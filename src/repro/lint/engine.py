"""Rule engine: registries, per-file dispatch, whole-program driver.

Two kinds of rules exist. *File rules* (:class:`Rule`) see one parsed file:
a single depth-first walk dispatches every node to the ``visit_<NodeType>``
handlers of every selected rule (the engine maintains the ancestor stack
rules need for scope questions), and rules that want whole-tree analyses
implement ``check_module`` instead. *Program rules* (:class:`ProgramRule`)
see the whole input at once — the engine summarises every file into the
:class:`~repro.lint.callgraph.Program` call graph and hands it to them
after all file passes finish; the taint and interprocedural-determinism
rules live here.

The driver (:func:`lint_sources` / :func:`lint_paths`) runs four stages:

1. per file — parse, file rules, suppression table, call-graph summary
   (all cacheable per content hash via :mod:`repro.lint.cache`);
2. program — build the call graph, run the program rules;
3. suppression hygiene — every ``disable=`` comment that suppressed
   nothing in stages 1–2 becomes a SUP001 finding;
4. sort.

Determinism contract: file lists are sorted and deduplicated, findings are
totally ordered, fixpoints iterate in sorted-qname order, and nothing about
a finding depends on traversal order — the acceptance test shuffles the
input paths and asserts byte-identical text/JSON/SARIF reports.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass

from repro.lint.callgraph import ModuleSummary, Program, summarize_module
from repro.lint.findings import Finding
from repro.lint.suppressions import Suppressions
from repro.utils.validation import ReproError


@dataclass(frozen=True)
class LintConfig:
    """Project knobs consulted by the shipped rules.

    The defaults encode this repository's layout — where the service lives,
    which functions are sanctioned taint sanitizers, which files must stay
    deterministic. Tests override them to point rules at fixture trees;
    fixtures instead fake their relative paths and import the real names so
    the defaults resolve against them.
    """

    #: path components under which wall-clock reads are expected (DET002/DET010)
    wallclock_allowed_dirs: tuple[str, ...] = ("benchmarks",)
    #: exact posix path suffixes where wall-clock reads are sanctioned
    wallclock_allowed_files: tuple[str, ...] = ("repro/runtime/stats.py",)
    #: posix path fragments marking the typed core (API001)
    typed_core: tuple[str, ...] = (
        "repro/graphs/",
        "repro/runtime/",
        "repro/utils/",
        "repro/lint/",
    )
    #: posix path fragments marking the array-first core (ARR001)
    array_core: tuple[str, ...] = ("repro/arraycore/",)

    # -- whole-program analysis (FLOW001/FLOW002, DET010, ASYNC001/002) --

    #: posix path fragments marking service code (taint secrets, async rules)
    service_paths: tuple[str, ...] = ("repro/service/",)
    #: attribute names whose reads introduce secret taint inside the service
    secret_attrs: tuple[str, ...] = ("seed", "tenant")
    #: functions whose return value carries original-vertex identity taint
    identity_sources: tuple[str, ...] = (
        "repro.graphs.io.read_adjacency",
        "repro.graphs.io.read_edge_list",
        "repro.service.protocol.parse_graph",
    )
    #: sanctioned sanitizers — taint does not survive a call through these
    flow_sanitizers: tuple[str, ...] = (
        "repro.core.anonymize.anonymize",
        "repro.core.republish.republish",
        "repro.core.republish.republish_naive",
        "repro.core.republish.republish_published",
        "repro.service.canon.canonicalize",
        "repro.service.protocol.effective_seed",
        "repro.utils.rng.derive_seed",
        "repro.utils.rng.ensure_rng",
        "repro.utils.rng.spawn",
    )
    #: method names that sanitize wherever they appear (canonical relabeling)
    sanitizer_methods: tuple[str, ...] = ("labeling", "map_back")
    #: publication writers — identity or secrets reaching these is a leak
    publication_sinks: tuple[str, ...] = (
        "repro.arraycore.publication.publication_texts_from_arrays",
        "repro.core.publication.save_publication",
        "repro.core.publication.save_publication_triple",
    )
    #: response serializer method names (identity must never reach raw)
    response_sink_methods: tuple[str, ...] = (
        "send_error", "send_json", "send_line", "start_ndjson",
    )
    #: artifact-cache methods whose key argument is shared across tenants
    cache_sinks: tuple[str, ...] = (
        "repro.service.cache.ArtifactCache.get",
        "repro.service.cache.ArtifactCache.put",
    )
    #: files whose functions must be deterministic (DET010 roots)
    det_critical_files: tuple[str, ...] = (
        "repro/audit/certificates.py",
        "repro/isomorphism/canonical.py",
        "repro/service/canon.py",
        "repro/service/handlers.py",
    )
    #: functions that stop nondeterminism propagation (seed plumbing)
    det_boundaries: tuple[str, ...] = (
        "repro.utils.rng.derive_seed",
        "repro.utils.rng.ensure_rng",
        "repro.utils.rng.spawn",
    )


class Rule:
    """Base class for per-file lint rules.

    Subclasses set ``code``/``name``/``rationale`` and implement any number
    of ``visit_<NodeType>(node, ctx)`` handlers and/or
    ``check_module(tree, ctx)``. One instance is created per linted file, so
    instance attributes are safe per-file state.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""

    def check_module(self, tree: ast.Module, ctx: "FileContext") -> None:
        """Optional whole-tree hook, called once before the shared walk."""


RULES: dict[str, type[Rule]] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a file rule to the global registry."""
    if not rule_class.code:
        raise ValueError(f"rule {rule_class.__name__} has no code")
    if rule_class.code in RULES or rule_class.code in PROGRAM_RULES:
        raise ValueError(f"duplicate rule code {rule_class.code}")
    RULES[rule_class.code] = rule_class
    return rule_class


class ProgramRule:
    """Base class for whole-program rules.

    ``check_program`` runs once per lint invocation, after every file has
    been summarised. Rules report through the :class:`ProgramContext`, which
    applies per-line suppressions exactly like the file-rule path, and may
    share expensive analyses through ``ctx.shared``.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""

    def check_program(self, program: Program, ctx: "ProgramContext") -> None:
        raise NotImplementedError


PROGRAM_RULES: dict[str, type[ProgramRule]] = {}


def register_program(rule_class: type[ProgramRule]) -> type[ProgramRule]:
    """Class decorator adding a whole-program rule to the registry."""
    if not rule_class.code:
        raise ValueError(f"rule {rule_class.__name__} has no code")
    if rule_class.code in RULES or rule_class.code in PROGRAM_RULES:
        raise ValueError(f"duplicate rule code {rule_class.code}")
    PROGRAM_RULES[rule_class.code] = rule_class
    return rule_class


def all_rule_codes() -> list[str]:
    """Every registered rule code (file + program), sorted."""
    return sorted([*RULES, *PROGRAM_RULES])


class FileContext:
    """Everything file rules may ask about the file being linted."""

    def __init__(self, relpath: str, source: str, tree: ast.Module,
                 config: LintConfig, suppressions: Suppressions) -> None:
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.config = config
        self.suppressions = suppressions
        #: ancestor nodes of the node currently being visited (outermost first)
        self.stack: list[ast.AST] = []
        self.findings: list[Finding] = []
        #: local name -> fully dotted origin, from every import in the file
        self.imports = _import_table(tree)

    # -- path predicates ------------------------------------------------

    def in_typed_core(self) -> bool:
        probe = "/" + self.relpath
        return any(fragment in probe for fragment in self.config.typed_core)

    def in_array_core(self) -> bool:
        probe = "/" + self.relpath
        return any(fragment in probe for fragment in self.config.array_core)

    def in_service(self) -> bool:
        probe = "/" + self.relpath
        return any(fragment in probe for fragment in self.config.service_paths)

    def wallclock_allowed(self) -> bool:
        parts = self.relpath.split("/")
        if any(part in self.config.wallclock_allowed_dirs for part in parts):
            return True
        return any(self.relpath.endswith(sfx) for sfx in self.config.wallclock_allowed_files)

    # -- name resolution ------------------------------------------------

    def resolve(self, node: ast.expr) -> str | None:
        """Resolve an attribute/name chain to a dotted origin, if importable.

        ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
        under ``import numpy as np``; a chain whose base is neither imported
        nor a recognised builtin resolves to ``None`` (e.g. a local variable
        called ``rng``), which rules treat as "not my concern".
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        origin = self.imports.get(node.id)
        if origin is None:
            return None
        parts.append(origin)
        return ".".join(reversed(parts))

    def is_builtin(self, node: ast.expr, name: str) -> bool:
        """Whether *node* is a bare reference to the builtin *name*.

        Heuristic: the right name, not rebound by any import. Local
        shadowing is not tracked — acceptable for ``id``/``hash``/``set``.
        """
        return isinstance(node, ast.Name) and node.id == name and name not in self.imports

    # -- reporting ------------------------------------------------------

    def report(self, rule: Rule, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.suppressions.is_suppressed(line, rule.code):
            return
        text = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        self.findings.append(
            Finding(path=self.relpath, line=line, col=col, code=rule.code,
                    message=message, line_text=text)
        )


def _import_table(tree: ast.Module) -> dict[str, str]:
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    # ``import a.b`` binds ``a``; attribute chains then
                    # resolve naturally through the bound root.
                    root = alias.name.split(".")[0]
                    table[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports never reach stdlib/numpy origins
            for alias in node.names:
                if alias.name == "*":
                    continue
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


# ---------------------------------------------------------------------------
# per-file pass
# ---------------------------------------------------------------------------


class _ParseFailure(Rule):
    code = "LNT000"
    name = "syntax-error"
    rationale = "a file the linter cannot parse cannot be certified"


@dataclass
class FileState:
    """One file's contribution to the whole-program stages."""

    relpath: str
    lines: list[str]
    suppressions: Suppressions
    findings: list[Finding]
    #: ``None`` when the file failed to parse (LNT000 already reported)
    summary: ModuleSummary | None


def _file_pass(source: str, relpath: str, config: LintConfig,
               select: frozenset[str] | None) -> FileState:
    """Stage 1 for one file: parse, file rules, suppressions, summary."""
    lines = source.splitlines()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        line = exc.lineno or 1
        finding = Finding(path=relpath, line=line, col=(exc.offset or 1) - 1,
                          code=_ParseFailure.code,
                          message=f"syntax error: {exc.msg}", line_text="")
        return FileState(relpath=relpath, lines=lines,
                         suppressions=Suppressions(), findings=[finding],
                         summary=None)
    suppressions = Suppressions(source)
    ctx = FileContext(relpath, source, tree, config, suppressions)
    rules = [cls() for code, cls in sorted(RULES.items())
             if select is None or code in select]
    handlers: dict[str, list[tuple[Rule, object]]] = {}
    for rule in rules:
        rule.check_module(tree, ctx)
        for attr in dir(rule):
            if attr.startswith("visit_"):
                handlers.setdefault(attr[len("visit_"):], []).append(
                    (rule, getattr(rule, attr))
                )

    def walk(node: ast.AST) -> None:
        for _rule, handler in handlers.get(type(node).__name__, ()):
            handler(node, ctx)  # type: ignore[operator]
        ctx.stack.append(node)
        for child in ast.iter_child_nodes(node):
            walk(child)
        ctx.stack.pop()

    walk(tree)
    summary = summarize_module(tree, relpath, config, suppressions)
    return FileState(relpath=relpath, lines=lines, suppressions=suppressions,
                     findings=sorted(ctx.findings), summary=summary)


# ---------------------------------------------------------------------------
# program pass
# ---------------------------------------------------------------------------


class ProgramContext:
    """Reporting surface handed to whole-program rules."""

    def __init__(self, config: LintConfig,
                 states: dict[str, FileState]) -> None:
        self.config = config
        self.states = states
        self.findings: list[Finding] = []
        #: scratch space for analyses shared between rules (e.g. the taint
        #: fixpoint, computed once and read by both FLOW001 and FLOW002)
        self.shared: dict[str, object] = {}

    def report(self, rule: ProgramRule, relpath: str, line: int, col: int,
               message: str) -> None:
        state = self.states.get(relpath)
        if state is not None and state.suppressions.is_suppressed(line, rule.code):
            return
        text = ""
        if state is not None and 0 < line <= len(state.lines):
            text = state.lines[line - 1].strip()
        self.findings.append(
            Finding(path=relpath, line=line, col=col, code=rule.code,
                    message=message, line_text=text)
        )


def _program_pass(states: dict[str, FileState], config: LintConfig,
                  select: frozenset[str] | None) -> list[Finding]:
    """Stage 2: build the call graph, run every selected program rule."""
    selected = [cls for code, cls in sorted(PROGRAM_RULES.items())
                if select is None or code in select]
    if not selected:
        return []
    program = Program([s.summary for s in states.values()
                       if s.summary is not None])
    ctx = ProgramContext(config, states)
    for cls in selected:
        cls().check_program(program, ctx)
    return sorted(ctx.findings)


# ---------------------------------------------------------------------------
# suppression hygiene (SUP001)
# ---------------------------------------------------------------------------


@register
class UselessSuppression(Rule):
    """Catalogue entry for SUP001; findings are produced by the driver,
    which alone sees the complete (file + program) usage accounting."""

    code = "SUP001"
    name = "useless-suppression"
    rationale = (
        "a disable= comment naming a code that never fires on its line is "
        "dead weight that hides real regressions when the code returns; "
        "suppressions must not rot silently"
    )


def _suppression_findings(states: dict[str, FileState],
                          select: frozenset[str] | None) -> list[Finding]:
    """Stage 3: SUP001 for every ``disable=`` pair that suppressed nothing.

    Only meaningful for codes that actually ran: under ``--select`` a pair
    naming an unselected code is skipped rather than reported (the rule it
    names had no chance to fire), and ``disable=all`` is only judged on
    unrestricted runs.
    """
    if select is not None and "SUP001" not in select:
        return []
    findings: list[Finding] = []
    for relpath in sorted(states):
        state = states[relpath]
        for line, code in state.suppressions.useless():
            if code == "ALL":
                if select is not None:
                    continue
            elif select is not None and code not in select:
                continue
            if state.suppressions.is_suppressed(line, "SUP001"):
                continue
            text = state.lines[line - 1].strip() if 0 < line <= len(state.lines) else ""
            findings.append(
                Finding(path=relpath, line=line, col=0, code="SUP001",
                        message=(f"suppression never fires: no {code} "
                                 "finding is reported on this line"),
                        line_text=text)
            )
    return sorted(findings)


# ---------------------------------------------------------------------------
# drivers
# ---------------------------------------------------------------------------


def lint_sources(sources: dict[str, str], config: LintConfig | None = None,
                 select: frozenset[str] | None = None,
                 cache: "object | None" = None) -> list[Finding]:
    """Lint a set of in-memory sources (relpath -> text) as one program."""
    from repro.lint.cache import SummaryCache  # local: avoid import cycle

    config = config or LintConfig()
    states: dict[str, FileState] = {}
    to_store: list[tuple[str, FileState]] = []
    for relpath in sorted(sources):
        source = sources[relpath]
        state: FileState | None = None
        key = ""
        if isinstance(cache, SummaryCache):
            key = cache.key(relpath, source, config, select)
            state = cache.load(key, relpath, source)
        if state is None:
            state = _file_pass(source, relpath, config, select)
            if isinstance(cache, SummaryCache):
                to_store.append((key, state))
        states[relpath] = state
    # Store before the program stages run: the cached suppression-usage must
    # reflect the file pass only (program findings depend on *other* files).
    for key, state in to_store:
        if isinstance(cache, SummaryCache):  # re-narrow for mypy
            cache.store(key, state)
    findings: list[Finding] = []
    for state in states.values():
        findings.extend(state.findings)
    findings.extend(_program_pass(states, config, select))
    findings.extend(_suppression_findings(states, select))
    return sorted(findings)


def lint_source(source: str, relpath: str, config: LintConfig | None = None,
                select: frozenset[str] | None = None) -> list[Finding]:
    """Lint one source string as *relpath* (a single-file program)."""
    return lint_sources({relpath: source}, config, select)


def lint_file(path: str, config: LintConfig | None = None,
              select: frozenset[str] | None = None) -> list[Finding]:
    """Lint one file from disk, reported under its normalised relative path."""
    relpath = _normalise(path)
    return lint_sources({relpath: _read_source(path)}, config, select)


def _read_source(path: str) -> str:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        raise ReproError(f"cannot read {path!r}: {exc}") from exc


def _normalise(path: str) -> str:
    rel = os.path.relpath(path)
    return rel.replace(os.sep, "/")


def iter_python_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted, deduplicated ``.py`` list.

    The expansion is independent of filesystem enumeration order, and a file
    reachable through two arguments is linted once.
    """
    seen: set[str] = set()
    out: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            candidates = [path]
        elif os.path.isdir(path):
            candidates = []
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d not in ("__pycache__", ".git"))
                candidates.extend(
                    os.path.join(root, f) for f in sorted(files) if f.endswith(".py")
                )
        else:
            raise ReproError(f"no such file or directory: {path!r}")
        for candidate in candidates:
            if not candidate.endswith(".py"):
                continue
            key = _normalise(candidate)
            if key not in seen:
                seen.add(key)
                out.append(candidate)
    return sorted(out, key=_normalise)


def lint_paths(paths: list[str], config: LintConfig | None = None,
               select: frozenset[str] | None = None,
               cache: "object | None" = None) -> list[Finding]:
    """Lint every ``.py`` file under *paths* as one whole program."""
    sources = {_normalise(p): _read_source(p) for p in iter_python_files(paths)}
    return lint_sources(sources, config, select, cache)
