"""Whole-program layer, part 2: interprocedural taint and determinism.

Two analyses run over the :class:`~repro.lint.callgraph.Program`:

:class:`FlowAnalysis` (FLOW001/FLOW002)
    Privacy taint. *Sources* introduce taint of two kinds — ``identity``
    (original vertex ids, from the configured graph-reading functions) and
    ``secret`` (per-tenant seeds and tenant names, from ``.seed``/``.tenant``
    attribute reads inside service code). *Sinks* are the places a leak
    becomes an artifact: publication writers, service response/NDJSON
    serializers, :class:`ArtifactCache` keys, and service log calls.
    *Sanitizers* are the sanctioned boundary functions (anonymize,
    canonicalize, ``derive_seed``/``effective_seed``, ``map_back``): taint
    does not survive a call through one. The analysis is interprocedural in
    both directions — a function returning tainted data taints its callers'
    expressions, and a function whose parameter reaches a sink turns every
    call passing tainted data into a finding at the *caller's* call site.

:class:`DetAnalysis` (DET010)
    Interprocedural determinism. Nondeterminism primitives (global RNG,
    wall clocks outside the sanctioned paths, OS entropy, set iteration)
    taint their containing function; taint propagates backwards over the
    call graph, stopping at declared determinism boundaries
    (``LintConfig.det_boundaries`` or ``# repro-lint: boundary=DET010``).
    Every function defined in a determinism-critical file that reaches a
    nondeterministic callee is reported at the offending call site, with
    the full call chain down to the primitive in the message.

Both analyses iterate to a fixpoint over functions in sorted-qname order and
derive every message from sorted data, so reports are byte-identical no
matter what order modules were summarised in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.lint.callgraph import Atom, CallSite, FunctionInfo, Program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import LintConfig

KIND_IDENTITY = "identity"
KIND_SECRET = "secret"

_KIND_TEXT = {
    KIND_IDENTITY: "original-vertex identity",
    KIND_SECRET: "per-tenant secret (seed/tenant)",
}

_KIND_CODE = {KIND_IDENTITY: "FLOW001", KIND_SECRET: "FLOW002"}

#: builtins whose result carries no information worth tracking — calls to
#: these do NOT propagate argument taint (``len(ids)`` is just a count)
_TAINT_OPAQUE_BUILTINS = frozenset({
    "len", "isinstance", "issubclass", "hasattr", "callable", "bool",
    "type", "id", "range",
})


@dataclass(frozen=True, order=True)
class ProgramFinding:
    """A whole-program finding, pre-:class:`~repro.lint.findings.Finding`."""

    relpath: str
    line: int
    col: int
    code: str
    message: str


def _in_service(relpath: str, config: "LintConfig") -> bool:
    probe = "/" + relpath
    return any(fragment in probe for fragment in config.service_paths)


# ---------------------------------------------------------------------------
# FLOW001 / FLOW002 — privacy taint
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _SinkSpec:
    """What a call site drains into, and which taint kinds it rejects."""

    desc: str
    accepts: frozenset[str]


#: classification tags for call sites
_SOURCE, _SANITIZER, _SINK, _INTERNAL, _OPAQUE, _EXTERNAL = range(6)


class FlowAnalysis:
    """Interprocedural privacy-taint over a summarised program."""

    def __init__(self, program: Program, config: "LintConfig") -> None:
        self.program = program
        self.config = config
        self._sanitizers = frozenset(config.flow_sanitizers)
        self._san_methods = frozenset(config.sanitizer_methods)
        self._identity_sources = frozenset(config.identity_sources)
        self._publication_sinks = frozenset(config.publication_sinks)
        self._cache_sinks = frozenset(config.cache_sinks)
        self._response_methods = frozenset(config.response_sink_methods)
        #: qname -> taint kinds its return value carries on its own
        self._ret_kinds: dict[str, set[str]] = {}
        #: qname -> parameter indices that flow through to the return value
        self._ret_params: dict[str, set[int]] = {}
        #: qname -> param index -> sink specs that parameter reaches
        self._sink_params: dict[str, dict[int, set[_SinkSpec]]] = {}
        #: per-fixpoint-iteration memo of call-atom evaluations
        self._memo: dict[tuple[str, int], tuple[frozenset[str], frozenset[int]]] = {}

    # -- call-site classification ---------------------------------------

    def _is_boundary(self, qname: str, code: str) -> bool:
        info = self.program.functions.get(qname)
        if info is None:
            return False
        return code in info.boundary or "ALL" in info.boundary

    def classify(self, relpath: str, site: CallSite) -> tuple[int, Any]:
        resolved = self.program.resolve(site.dotted)
        last = site.chain.rsplit(".", 1)[-1] if site.chain else ""
        if resolved in self._identity_sources:
            return _SOURCE, KIND_IDENTITY
        if resolved in self._sanitizers or last in self._san_methods:
            return _SANITIZER, None
        if self._is_boundary(resolved, "FLOW001") \
                or self._is_boundary(resolved, "FLOW002"):
            return _SANITIZER, None
        if resolved in self._publication_sinks:
            return _SINK, _SinkSpec(
                desc=f"publication writer {resolved.rsplit('.', 1)[-1]}()",
                accepts=frozenset({KIND_IDENTITY, KIND_SECRET}))
        if resolved in self._cache_sinks:
            return _SINK, _SinkSpec(
                desc=f"artifact-cache key ({last}())",
                accepts=frozenset({KIND_IDENTITY, KIND_SECRET}))
        if _in_service(relpath, self.config):
            if last in self._response_methods:
                return _SINK, _SinkSpec(
                    desc=f"service response serializer {last}()",
                    accepts=frozenset({KIND_IDENTITY}))
            if site.chain == "print" or resolved.startswith("logging."):
                return _SINK, _SinkSpec(
                    desc="service log output",
                    accepts=frozenset({KIND_IDENTITY, KIND_SECRET}))
        if resolved in self.program.functions:
            return _INTERNAL, resolved
        if site.chain in _TAINT_OPAQUE_BUILTINS:
            return _OPAQUE, None
        return _EXTERNAL, None

    # -- atom evaluation -------------------------------------------------

    def _eval_atoms(self, info: FunctionInfo, relpath: str,
                    atoms: list[Atom]) -> tuple[set[str], set[int]]:
        """(taint kinds, parameter indices) an atom list may carry."""
        kinds: set[str] = set()
        params: set[int] = set()
        for atom in atoms:
            tag = atom[0]
            if tag == "src":
                kinds.add(atom[1])
            elif tag == "param":
                params.add(atom[1])
            elif tag == "call":
                k, p = self._eval_call(info, relpath, atom[1])
                kinds |= k
                params |= p
        return kinds, params

    def _eval_call(self, info: FunctionInfo, relpath: str,
                   index: int) -> tuple[frozenset[str], frozenset[int]]:
        key = (info.qname, index)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        site = info.calls[index]
        tag, data = self.classify(relpath, site)
        kinds: set[str] = set()
        params: set[int] = set()
        if tag == _SOURCE:
            kinds.add(data)
        elif tag in (_SANITIZER, _OPAQUE, _SINK):
            pass  # nothing flows out (sink return values are status-ish)
        elif tag == _INTERNAL:
            callee = self.program.functions[data]
            kinds |= self._ret_kinds.get(data, set())
            for p in self._ret_params.get(data, set()):
                for atoms in self._atoms_for_param(site, callee, p):
                    k, q = self._eval_atoms(info, relpath, atoms)
                    kinds |= k
                    params |= q
        else:  # unresolved external: propagate everything conservatively
            for atoms in [site.recv, *site.args, *site.kwargs.values()]:
                k, q = self._eval_atoms(info, relpath, atoms)
                kinds |= k
                params |= q
        result = (frozenset(kinds), frozenset(params))
        self._memo[key] = result
        return result

    @staticmethod
    def _atoms_for_param(site: CallSite, callee: FunctionInfo,
                         index: int) -> list[list[Atom]]:
        """The caller's atom lists feeding the callee's parameter *index*."""
        out: list[list[Atom]] = []
        if index < len(site.args):
            out.append(site.args[index])
        elif index < len(callee.params):
            name = callee.params[index]
            if name in site.kwargs:
                out.append(site.kwargs[name])
        if "**" in site.kwargs:
            out.append(site.kwargs["**"])
        return out

    # -- fixpoints --------------------------------------------------------

    def _relpath(self, qname: str) -> str:
        return self.program.relpath_of(qname)

    def _fix_returns(self) -> None:
        for info in self.program.sorted_functions():
            self._ret_kinds[info.qname] = set()
            self._ret_params[info.qname] = set()
        changed = True
        while changed:
            changed = False
            self._memo.clear()
            for info in self.program.sorted_functions():
                relpath = self._relpath(info.qname)
                kinds, params = self._eval_atoms(info, relpath, info.returns)
                if not kinds <= self._ret_kinds[info.qname]:
                    self._ret_kinds[info.qname] |= kinds
                    changed = True
                if not params <= self._ret_params[info.qname]:
                    self._ret_params[info.qname] |= params
                    changed = True

    def _sink_feeds(self, site: CallSite) -> list[list[Atom]]:
        """The atom lists checked against a sink call (receiver excluded —
        the sink object itself is plumbing, not data)."""
        return [*site.args, *[site.kwargs[k] for k in sorted(site.kwargs)]]

    def _fix_sinks(self) -> None:
        for info in self.program.sorted_functions():
            self._sink_params[info.qname] = {}
        changed = True
        while changed:
            changed = False
            self._memo.clear()
            for info in self.program.sorted_functions():
                relpath = self._relpath(info.qname)
                table = self._sink_params[info.qname]
                for site in info.calls:
                    tag, data = self.classify(relpath, site)
                    if tag == _SINK:
                        for atoms in self._sink_feeds(site):
                            _, params = self._eval_atoms(info, relpath, atoms)
                            for p in params:
                                if data not in table.setdefault(p, set()):
                                    table[p].add(data)
                                    changed = True
                    elif tag == _INTERNAL:
                        callee = self.program.functions[data]
                        for p_callee, specs in sorted(
                                self._sink_params[data].items()):
                            for atoms in self._atoms_for_param(
                                    site, callee, p_callee):
                                _, params = self._eval_atoms(
                                    info, relpath, atoms)
                                for p in params:
                                    missing = specs - table.setdefault(p, set())
                                    if missing:
                                        table[p] |= missing
                                        changed = True

    # -- reporting --------------------------------------------------------

    def run(self) -> list[ProgramFinding]:
        self._fix_returns()
        self._fix_sinks()
        self._memo.clear()
        findings: set[ProgramFinding] = set()
        for info in self.program.sorted_functions():
            relpath = self._relpath(info.qname)
            for site in info.calls:
                tag, data = self.classify(relpath, site)
                if tag == _SINK:
                    for atoms in self._sink_feeds(site):
                        kinds, _ = self._eval_atoms(info, relpath, atoms)
                        for kind in sorted(kinds & data.accepts):
                            findings.add(ProgramFinding(
                                relpath=relpath, line=site.line, col=site.col,
                                code=_KIND_CODE[kind],
                                message=(f"{_KIND_TEXT[kind]} reaches "
                                         f"{data.desc} without passing a "
                                         "sanctioned sanitizer"),
                            ))
                elif tag == _INTERNAL:
                    callee = self.program.functions[data]
                    for p_callee, specs in sorted(
                            self._sink_params[data].items()):
                        for atoms in self._atoms_for_param(
                                site, callee, p_callee):
                            kinds, _ = self._eval_atoms(info, relpath, atoms)
                            for spec in sorted(specs, key=lambda s: s.desc):
                                for kind in sorted(kinds & spec.accepts):
                                    findings.add(ProgramFinding(
                                        relpath=relpath, line=site.line,
                                        col=site.col, code=_KIND_CODE[kind],
                                        message=(
                                            f"{_KIND_TEXT[kind]} reaches "
                                            f"{spec.desc} via "
                                            f"{callee.qname}() without "
                                            "passing a sanctioned sanitizer"),
                                    ))
        return sorted(findings)


# ---------------------------------------------------------------------------
# DET010 — interprocedural determinism
# ---------------------------------------------------------------------------


class DetAnalysis:
    """Nondeterminism reachability from determinism-critical code."""

    def __init__(self, program: Program, config: "LintConfig") -> None:
        self.program = program
        self.config = config
        self._boundaries = frozenset(config.det_boundaries)
        #: qname -> (line, description) of its first own primitive, if any
        self._direct: dict[str, tuple[int, str]] = {}
        #: qnames whose execution may read nondeterminism (transitively)
        self._nondet: set[str] = set()

    def _is_boundary(self, info: FunctionInfo) -> bool:
        return (info.qname in self._boundaries
                or "DET010" in info.boundary or "ALL" in info.boundary)

    def _fix(self) -> None:
        for info in self.program.sorted_functions():
            if info.nondet and not self._is_boundary(info):
                self._direct[info.qname] = min(info.nondet)
                self._nondet.add(info.qname)
        changed = True
        while changed:
            changed = False
            for info in self.program.sorted_functions():
                if info.qname in self._nondet or self._is_boundary(info):
                    continue
                for site in info.calls:
                    resolved = self.program.resolve(site.dotted)
                    if resolved in self._nondet:
                        self._nondet.add(info.qname)
                        changed = True
                        break

    def _chain(self, qname: str) -> list[str]:
        """Deterministic call chain from *qname* down to a primitive."""
        chain: list[str] = []
        seen: set[str] = set()
        current = qname
        while current not in seen:
            seen.add(current)
            info = self.program.functions[current]
            direct = self._direct.get(current)
            if direct is not None:
                line, desc = direct
                chain.append(f"{current} ({desc} at line {line})")
                return chain
            chain.append(current)
            for site in info.calls:
                resolved = self.program.resolve(site.dotted)
                if resolved in self._nondet and resolved not in seen:
                    current = resolved
                    break
            else:  # pragma: no cover - nondet implies a nondet callee
                return chain
        return chain

    def _critical(self, relpath: str) -> bool:
        return any(relpath.endswith(sfx)
                   for sfx in self.config.det_critical_files)

    def run(self) -> list[ProgramFinding]:
        self._fix()
        findings: list[ProgramFinding] = []
        for info in self.program.sorted_functions():
            relpath = self.program.relpath_of(info.qname)
            if not self._critical(relpath) or self._is_boundary(info):
                continue
            for site in info.calls:
                resolved = self.program.resolve(site.dotted)
                if resolved not in self._nondet:
                    continue
                chain = " -> ".join(self._chain(resolved))
                findings.append(ProgramFinding(
                    relpath=relpath, line=site.line, col=site.col,
                    code="DET010",
                    message=(f"{info.name}() is determinism-critical but "
                             f"this call reaches nondeterminism: {chain}"),
                ))
                break  # one finding per critical function keeps reports tight
        return sorted(findings)
