"""Static determinism & invariant linter for the k-symmetry pipeline.

The pipeline's headline guarantees — byte-identical seed-deterministic
outputs, no raw identity in published artifacts, CSR-cache coherence under
mutation, picklable parallel tasks — are enforced dynamically by the test
suite and the :mod:`repro.audit` fuzzer. Both catch violations only after
they ship, and only on inputs the corpus happens to exercise. This package
enforces the same invariants *statically*, on every line of source, before
merge.

Per-file rules (one parsed file at a time):

========  ==============================================================
DET001    unseeded randomness (global ``random``/``np.random`` state)
DET002    wall-clock reads in library code
DET003    ordering hazards (set iteration into output, ``id()`` sort keys)
MUT001    structural ``Graph`` mutation without CSR-cache invalidation
PAR001    non-module-level callables handed to the parallel runtime
API001    missing type annotations on public functions of the typed core
ARR001    array-core purity (no dict-graph fallbacks in the hot path)
ASYNC001  shared service state read, awaited, then written (torn state)
ASYNC002  iterating shared service state with awaits in the loop body
SUP001    ``disable=`` suppressions that never fire
========  ==============================================================

Whole-program rules (the v2 layer: imports resolved across the package, a
conservative call graph, taint-style dataflow — see
:mod:`repro.lint.callgraph` and :mod:`repro.lint.dataflow`):

========  ==============================================================
FLOW001   original-vertex identity reaching a publication writer,
          response serializer, cache key, or service log unsanitized
FLOW002   per-tenant secrets (seeds, tenant names) reaching shared
          artifacts without derive_seed/effective_seed namespacing
DET010    determinism-critical code (certificates, canonical forms,
          cache keys) reaching nondeterminism through any call chain
========  ==============================================================

Run ``python -m repro.lint [paths]`` (or ``ksymmetry lint``); see
``docs/linting.md`` for the rule catalogue, the taint model, the
suppression and boundary syntax (``# repro-lint: disable=CODE -- reason``,
``# repro-lint: boundary=CODE -- reason``), the baseline workflow, and
SARIF output for CI code scanning.
"""

from __future__ import annotations

# Importing the rule modules registers every shipped rule with the engine.
from repro.lint import rules as _rules  # noqa: F401  (import-for-effect)
from repro.lint.baseline import fingerprint_findings, load_baseline, write_baseline
from repro.lint.cache import SummaryCache
from repro.lint.callgraph import ModuleSummary, Program, summarize_module
from repro.lint.cli import main
from repro.lint.engine import (
    PROGRAM_RULES,
    RULES,
    LintConfig,
    ProgramRule,
    Rule,
    all_rule_codes,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    lint_sources,
    register,
    register_program,
)
from repro.lint.findings import Finding, render_json, render_text
from repro.lint.sarif import render_sarif
from repro.lint.suppressions import Suppressions

__all__ = [
    "PROGRAM_RULES",
    "RULES",
    "Finding",
    "LintConfig",
    "ModuleSummary",
    "Program",
    "ProgramRule",
    "Rule",
    "SummaryCache",
    "Suppressions",
    "all_rule_codes",
    "fingerprint_findings",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "load_baseline",
    "main",
    "register",
    "register_program",
    "render_json",
    "render_sarif",
    "render_text",
    "summarize_module",
    "write_baseline",
]
