"""Static determinism & invariant linter for the k-symmetry pipeline.

The pipeline's headline guarantees — byte-identical seed-deterministic
outputs, CSR-cache coherence under mutation, picklable parallel tasks — are
enforced dynamically by the test suite and the :mod:`repro.audit` fuzzer.
Both catch violations only after they ship, and only on inputs the corpus
happens to exercise. This package enforces the same invariants *statically*,
on every line of source, before merge:

========  ==============================================================
DET001    unseeded randomness (global ``random``/``np.random`` state)
DET002    wall-clock reads in library code
DET003    ordering hazards (set iteration into output, ``id()`` sort keys)
MUT001    structural ``Graph`` mutation without CSR-cache invalidation
PAR001    non-module-level callables handed to the parallel runtime
API001    missing type annotations on public functions of the typed core
========  ==============================================================

Run ``python -m repro.lint [paths]`` (or ``ksymmetry lint``); see
``docs/linting.md`` for the rule catalogue, the suppression syntax
(``# repro-lint: disable=CODE -- reason``) and the baseline workflow.
"""

from __future__ import annotations

# Importing the rule modules registers every shipped rule with the engine.
from repro.lint import rules as _rules  # noqa: F401  (import-for-effect)
from repro.lint.baseline import fingerprint_findings, load_baseline, write_baseline
from repro.lint.cli import main
from repro.lint.engine import (
    RULES,
    LintConfig,
    Rule,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    register,
)
from repro.lint.findings import Finding, render_json, render_text
from repro.lint.suppressions import Suppressions

__all__ = [
    "RULES",
    "Finding",
    "LintConfig",
    "Rule",
    "Suppressions",
    "fingerprint_findings",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "main",
    "register",
    "render_json",
    "render_text",
    "write_baseline",
]
