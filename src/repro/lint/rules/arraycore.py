"""ARR001 — no dict-``Graph`` adjacency iteration inside the array core.

The modules under ``repro/arraycore/`` are the scale path: every hot pass is
written against flat CSR arrays (``indptr``/``indices``), and the dict
:class:`repro.graphs.graph.Graph` exists there only at the conversion
boundary (``OverlayGraph.from_graph`` / ``to_graph``). A call like
``graph.neighbors(v)`` or ``for u, v in graph.sorted_edges()`` inside an
array-core module is a per-element dict traversal sneaking back into a path
benchmarked at a million vertices — the exact regression
``benchmarks/bench_scale.py`` exists to catch, caught here statically
instead.

Reference-oracle replays that intentionally drive the dict API (e.g. the
``engine="reference"`` half of the pipeline) suppress per line with
``# repro-lint: disable=ARR001 -- <reason>``.
"""

from __future__ import annotations

import ast

from repro.lint.engine import FileContext, Rule, register

#: Graph methods that iterate or probe the dict-of-sets adjacency
_DICT_ADJACENCY_METHODS = frozenset({
    "adjacency",
    "degree",
    "edges",
    "neighbors",
    "sorted_edges",
    "sorted_neighbors",
    "sorted_vertices",
    "vertices",
})


@register
class ArrayCoreDictAdjacency(Rule):
    code = "ARR001"
    name = "array-core-dict-adjacency"
    rationale = (
        "the array core's contract is flat-array passes over CSR; a dict "
        "adjacency call there reintroduces per-element traversal on the "
        "path the scale benchmark certifies at 1e6 vertices"
    )

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if not ctx.in_array_core():
            return
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in _DICT_ADJACENCY_METHODS:
            return
        ctx.report(self, node,
                   f"dict-Graph adjacency call .{func.attr}() inside the "
                   "array core; use the CSR arrays (indptr/indices), or "
                   "suppress on reference-oracle lines")
