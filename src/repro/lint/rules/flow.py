"""FLOW001/FLOW002 — whole-program privacy taint.

The repo's published-artifact guarantee (no raw identity, no cross-tenant
seed material in shared state) is enforced dynamically by certificates and
fuzzing; these rules enforce it statically, across function boundaries.
The heavy lifting lives in :class:`repro.lint.dataflow.FlowAnalysis`; the
two rule classes here exist so each code has its own catalogue entry,
``--select`` handle, and fixture pair. The analysis runs once per lint
invocation and is shared between them through ``ctx.shared``.

Declaring a new sanctioned boundary: either add the function's qualified
name to ``LintConfig.flow_sanitizers``, or mark the ``def`` in place::

    # repro-lint: boundary=FLOW001,FLOW002 -- relabels into canonical space
    def my_sanitizer(graph):
        ...
"""

from __future__ import annotations

from repro.lint.callgraph import Program
from repro.lint.dataflow import FlowAnalysis, ProgramFinding
from repro.lint.engine import ProgramContext, ProgramRule, register_program

_SHARED_KEY = "flow-findings"


def _flow_findings(program: Program, ctx: ProgramContext) -> list[ProgramFinding]:
    cached = ctx.shared.get(_SHARED_KEY)
    if isinstance(cached, list):
        return cached
    findings = FlowAnalysis(program, ctx.config).run()
    ctx.shared[_SHARED_KEY] = findings
    return findings


class _FlowRule(ProgramRule):
    def check_program(self, program: Program, ctx: ProgramContext) -> None:
        for finding in _flow_findings(program, ctx):
            if finding.code == self.code:
                ctx.report(self, finding.relpath, finding.line, finding.col,
                           finding.message)


@register_program
class IdentityLeak(_FlowRule):
    code = "FLOW001"
    name = "identity-taint"
    rationale = (
        "original vertex ids must never reach a publication writer, response "
        "serializer, artifact-cache key, or service log except through the "
        "sanctioned anonymize/canonicalize/map_back boundaries — a raw id in "
        "any output artifact is precisely the leak the k-symmetry model "
        "exists to prevent"
    )


@register_program
class SecretLeak(_FlowRule):
    code = "FLOW002"
    name = "secret-taint"
    rationale = (
        "per-tenant seeds and tenant names must stay out of shared artifacts "
        "(cache keys, publications, logs) except through derive_seed/"
        "effective_seed namespacing — a raw seed in a shared cache key leaks "
        "one tenant's material into another's artifacts"
    )
