"""API001 — the typed core keeps complete public signatures.

mypy runs in gradual-strict mode over ``repro.graphs``/``repro.runtime``/
``repro.utils`` (see ``pyproject.toml``); this rule is the in-tree mirror of
``disallow_untyped_defs`` with zero external dependencies, so the same
contract is enforced even where mypy is not installed, and extends to
packages (like this linter) before they join the mypy list.

Public = a function or method whose name has no leading underscore, defined
at module or class top level, in a typed-core package. Every parameter
(``self``/``cls`` excluded) and the return type must be annotated.
"""

from __future__ import annotations

import ast

from repro.lint.engine import FileContext, Rule, register


@register
class PublicAnnotations(Rule):
    code = "API001"
    name = "typed-core-annotations"
    rationale = (
        "complete signatures on the core packages keep mypy's gradual-strict "
        "gate meaningful and stop untyped APIs from leaking outward"
    )

    def visit_FunctionDef(self, node: ast.FunctionDef, ctx: FileContext) -> None:
        self._check(node, ctx)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef, ctx: FileContext) -> None:
        self._check(node, ctx)

    def _check(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
               ctx: FileContext) -> None:
        if not ctx.in_typed_core() or node.name.startswith("_"):
            return
        # only module- and class-level defs are public API; nested helpers
        # (stack holds Module, then ClassDef/FunctionDef ancestors) are not
        if any(isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef))
               for anc in ctx.stack):
            return
        in_class = any(isinstance(anc, ast.ClassDef) for anc in ctx.stack)
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        if in_class and positional and positional[0].arg in ("self", "cls"):
            positional = positional[1:]
        missing = [a.arg for a in positional + list(args.kwonlyargs)
                   if a.annotation is None]
        missing += [a.arg for a in (args.vararg, args.kwarg)
                    if a is not None and a.annotation is None]
        if node.returns is None:
            missing.append("return")
        if missing:
            ctx.report(self, node,
                       f"public function {node.name} in the typed core is "
                       f"missing annotations: {', '.join(missing)}")
