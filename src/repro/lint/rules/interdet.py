"""DET010 — interprocedural determinism for certificate/canonical/cache code.

The syntactic DET rules (DET001–DET003) flag nondeterminism primitives
where they appear; DET010 escalates them across the call graph: a function
defined in a determinism-critical file (certificates, canonical forms,
cache-key derivation — ``LintConfig.det_critical_files``) must not *reach*
nondeterminism through any chain of calls, even when every individual frame
looks innocent. Sanctioned seed plumbing (``ensure_rng``/``derive_seed``/
``spawn``, plus any function marked ``# repro-lint: boundary=DET010``)
stops propagation: randomness that flows from an explicit seed is exactly
what the boundary functions certify.

The analysis itself lives in :class:`repro.lint.dataflow.DetAnalysis`; the
finding lands on the first offending call site inside the critical function
and its message spells out the complete chain down to the primitive.
"""

from __future__ import annotations

from repro.lint.callgraph import Program
from repro.lint.dataflow import DetAnalysis
from repro.lint.engine import ProgramContext, ProgramRule, register_program


@register_program
class InterproceduralNondeterminism(ProgramRule):
    code = "DET010"
    name = "interprocedural-nondeterminism"
    rationale = (
        "certificates, canonical forms, and cache keys must be pure "
        "functions of their inputs; nondeterminism reached through any call "
        "chain (global RNG, wall clocks, OS entropy, set iteration) makes "
        "artifacts unverifiable and cache keys collide across runs"
    )

    def check_program(self, program: Program, ctx: ProgramContext) -> None:
        for finding in DetAnalysis(program, ctx.config).run():
            ctx.report(self, finding.relpath, finding.line, finding.col,
                       finding.message)
