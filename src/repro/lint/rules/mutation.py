"""MUT001 — structural mutation must invalidate the CSR cache.

:class:`repro.graphs.graph.Graph` caches an immutable CSR snapshot on the
instance (``self._csr``); every hot kernel (refinement, measures, clustering)
reads it. A structural mutator that forgets ``self._csr = None`` would hand
those kernels a stale topology — the exact bug class PR 3's cache-invalidation
tests probe dynamically, enforced here for every method, on every class that
adopts the same caching pattern.

A class is "CSR-caching" when ``_csr`` appears in its ``__slots__`` or is
assigned on ``self`` anywhere in the class. A method is "structurally
mutating" when it writes ``self._adj``/``self._m`` (assignment, augmented
assignment, deletion, or a mutating container-method call). Such a method
must either assign ``self._csr`` itself or call another method of the class
that does (an invalidation helper).
"""

from __future__ import annotations

import ast

from repro.lint.engine import FileContext, Rule, register

#: attributes whose mutation changes graph structure
_STRUCTURAL_ATTRS = frozenset({"_adj", "_m"})

#: container methods that mutate their receiver
_MUTATING_METHODS = frozenset({
    "add", "append", "clear", "discard", "extend", "insert", "pop",
    "popitem", "remove", "setdefault", "update",
})


def _self_attr(node: ast.expr, attrs: frozenset[str]) -> bool:
    """Whether *node* is ``self.<attr>`` (possibly under a subscript)."""
    if isinstance(node, ast.Subscript):
        node = node.value
    return (
        isinstance(node, ast.Attribute)
        and node.attr in attrs
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _mutates_structure(stmt: ast.AST) -> bool:
    if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        if any(_self_attr(t, _STRUCTURAL_ATTRS) for t in targets):
            return True
    if isinstance(stmt, ast.Delete):
        if any(_self_attr(t, _STRUCTURAL_ATTRS) for t in stmt.targets):
            return True
    if isinstance(stmt, ast.Call) and isinstance(stmt.func, ast.Attribute):
        if stmt.func.attr in _MUTATING_METHODS and _self_attr(stmt.func.value,
                                                              _STRUCTURAL_ATTRS):
            return True
    return False


def _assigns_csr(stmt: ast.AST) -> bool:
    if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        return any(_self_attr(t, frozenset({"_csr"})) for t in targets)
    return False


def _self_calls(func: ast.FunctionDef) -> set[str]:
    """Names of methods invoked as ``self.<name>(...)`` inside *func*."""
    out: set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            out.add(node.func.attr)
    return out


@register
class CSRInvalidation(Rule):
    code = "MUT001"
    name = "csr-cache-invalidation"
    rationale = (
        "a structural mutator that does not drop the cached CSR view hands "
        "every downstream kernel a stale topology; refinement, measures and "
        "clustering would silently disagree with the dict representation"
    )

    def visit_ClassDef(self, node: ast.ClassDef, ctx: FileContext) -> None:
        methods = [s for s in node.body
                   if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))]
        if not self._caches_csr(node, methods):
            return
        invalidators = {
            m.name for m in methods
            if any(_assigns_csr(sub) for sub in ast.walk(m))
        }
        for method in methods:
            mutates = any(_mutates_structure(sub) for sub in ast.walk(method))
            if not mutates or method.name in invalidators:
                continue
            if _self_calls(method) & invalidators:
                continue  # delegates invalidation to a helper it calls
            ctx.report(self, method,
                       f"method {node.name}.{method.name} mutates graph "
                       "structure without invalidating the CSR cache "
                       "(self._csr = None)")

    @staticmethod
    def _caches_csr(node: ast.ClassDef, methods: list[ast.FunctionDef]) -> bool:
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                names = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
                if "__slots__" in names:
                    for const in ast.walk(stmt.value):
                        if isinstance(const, ast.Constant) and const.value == "_csr":
                            return True
        return any(
            any(_assigns_csr(sub) for sub in ast.walk(m)) for m in methods
        )
