"""ASYNC001/ASYNC002 — await-hazard detection for ``repro.service``.

The daemon is single-threaded asyncio: state is only torn *at await
points*, where another task may run. The classic bug shapes:

* **ASYNC001** — check-then-act across an await: read shared state
  (``self.attr``), await, then write it. Whatever the read established may
  no longer hold when the write lands (another task drained the queue,
  closed the connection, replaced the consumer).
* **ASYNC002** — iterate a shared container (``self.attr``) with an await
  in the loop body: a task scheduled at the await may mutate the container
  mid-iteration (``RuntimeError: dict changed size`` at best, silently
  skipped entries at worst).

Both rules apply only under ``LintConfig.service_paths``, skip nested
function definitions (their bodies run on their own schedule), and treat an
``async with`` over a lock-ish object (``lock``/``mutex``/``sem``/
``condition`` in the name) as a critical section: events inside it are
exempt. The analysis is a linear-position approximation of control flow —
read < await < write by ``(line, col)`` — which is exactly the shape the
fix changes (snapshot into a local before the await, or move the write
before it), so true positives survive and the fixed code goes quiet.
"""

from __future__ import annotations

import ast

from repro.lint.engine import FileContext, Rule, register

_LOCKISH = ("lock", "mutex", "sem", "condition")


def _is_lockish(expr: ast.expr) -> bool:
    """Whether an ``async with`` context looks like a lock acquisition."""
    node = expr
    if isinstance(node, ast.Call):
        node = node.func
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return any(frag in part.lower() for part in parts for frag in _LOCKISH)


def _self_attr(node: ast.expr) -> str | None:
    """``self.X`` -> ``X`` (one level only; deeper chains are the object's
    own state, not the daemon's slot)."""
    if (isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


class _EventCollector(ast.NodeVisitor):
    """Reads/writes of ``self.*`` and awaits, in source-position order,
    skipping nested defs and lock-guarded regions."""

    def __init__(self) -> None:
        self.reads: dict[str, list[tuple[int, int]]] = {}
        self.writes: dict[str, list[tuple[int, int, ast.AST]]] = {}
        self.awaits: list[tuple[int, int]] = []

    # -- pruned subtrees -------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return  # nested def: its body runs later, on its own schedule

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        if any(_is_lockish(item.context_expr) for item in node.items):
            return  # critical section: interleaving excluded by the lock
        self.generic_visit(node)

    # -- events ----------------------------------------------------------

    def visit_Await(self, node: ast.Await) -> None:
        self.awaits.append((node.lineno, node.col_offset))
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _self_attr(node)
        if attr is not None:
            pos = (node.lineno, node.col_offset)
            if isinstance(node.ctx, ast.Load):
                self.reads.setdefault(attr, []).append(pos)
            else:
                self.writes.setdefault(attr, []).append((*pos, node))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # ``self.n += 1`` reads and writes at one position: no await can
        # fall between its own read and write, but an *earlier* read of
        # the same attribute across an await still makes the write torn.
        attr = _self_attr(node.target)
        if attr is not None:
            pos = (node.lineno, node.col_offset)
            self.reads.setdefault(attr, []).append(pos)
            self.writes.setdefault(attr, []).append((*pos, node.target))
        self.visit(node.value)


@register
class AwaitTornState(Rule):
    code = "ASYNC001"
    name = "await-torn-state"
    rationale = (
        "in asyncio, every await is a scheduling point: shared state read "
        "before an await may be stale by the time it is written after it; "
        "snapshot into a local and clear/write before awaiting, or hold a "
        "lock across the sequence"
    )

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef,
                               ctx: FileContext) -> None:
        if not ctx.in_service():
            return
        events = _EventCollector()
        for stmt in node.body:
            events.visit(stmt)
        if not events.awaits:
            return
        for attr in sorted(set(events.reads) & set(events.writes)):
            hit = self._torn(events.reads[attr], events.writes[attr],
                             events.awaits)
            if hit is not None:
                read_pos, await_pos, write_pos = hit
                ctx.report(
                    self,
                    _at(write_pos),
                    f"self.{attr} is read at line {read_pos[0]}, then "
                    f"awaited at line {await_pos[0]}, then written here — "
                    "another task may have changed it in between; snapshot "
                    "into a local and write before the await (or lock)",
                )

    @staticmethod
    def _torn(reads: list[tuple[int, int]],
              writes: list[tuple[int, int, ast.AST]],
              awaits: list[tuple[int, int]],
              ) -> tuple[tuple[int, int], tuple[int, int], ast.AST] | None:
        for wline, wcol, wnode in sorted(writes, key=lambda w: (w[0], w[1])):
            for a in sorted(awaits):
                if not a < (wline, wcol):
                    break
                for r in sorted(reads):
                    if r < a:
                        return r, a, wnode
        return None


@register
class AwaitDuringIteration(Rule):
    code = "ASYNC002"
    name = "await-during-iteration"
    rationale = (
        "awaiting inside a loop over shared daemon state lets another task "
        "mutate the container mid-iteration; iterate over a snapshot "
        "(list(self.x)) instead"
    )

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef,
                               ctx: FileContext) -> None:
        if not ctx.in_service():
            return
        for loop in _walk_pruned(node):
            if not isinstance(loop, (ast.For, ast.AsyncFor)):
                continue
            attr = self._shared_iter_attr(loop.iter)
            if attr is None:
                continue
            if not self._body_awaits(loop):
                continue
            ctx.report(
                self, loop,
                f"loop iterates self.{attr} directly while its body awaits; "
                f"another task can mutate self.{attr} at the await — "
                f"iterate a snapshot: list(self.{attr})",
            )

    @staticmethod
    def _shared_iter_attr(iter_expr: ast.expr) -> str | None:
        """``self.X`` / ``self.X.items()``-style iterables (snapshots like
        ``list(self.X)`` intentionally do not match)."""
        node = iter_expr
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("items", "keys", "values")
                and not node.args and not node.keywords):
            node = node.func.value
        return _self_attr(node)

    @staticmethod
    def _body_awaits(loop: ast.For | ast.AsyncFor) -> bool:
        for stmt in loop.body:
            for sub in _walk_pruned(stmt, include_root=True):
                if isinstance(sub, ast.Await):
                    return True
        return False


def _walk_pruned(node: ast.AST, include_root: bool = False) -> list[ast.AST]:
    """Depth-first nodes under *node*, pruning nested function bodies
    (they run on their own schedule, not inside this coroutine)."""
    out: list[ast.AST] = [node] if include_root else []
    stack = [child for child in ast.iter_child_nodes(node)]
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
            continue
        out.append(current)
        stack.extend(ast.iter_child_nodes(current))
    return out


class _at:
    """A minimal location carrier for :meth:`FileContext.report`."""

    def __init__(self, node: ast.AST) -> None:
        self.lineno = getattr(node, "lineno", 1)
        self.col_offset = getattr(node, "col_offset", 0)
