"""DET001/DET002/DET003 — the seed-determinism rules.

These protect the pipeline's core guarantee (Definition 1 plumbing): the
published graph, every sample, and every experiment artefact are a pure
function of the input graph and an integer seed. Hidden entropy sources —
global RNG state, wall clocks, hash-salted iteration order — are exactly the
"ordering artefacts" that the de-anonymization literature turns into side
channels against released graphs.
"""

from __future__ import annotations

import ast

from repro.lint.engine import FileContext, Rule, register

#: ``random``-module functions that read or write hidden global state
_RANDOM_GLOBAL_FNS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "getstate", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
    "vonmisesvariate", "weibullvariate",
})

#: ``numpy.random`` module-level functions backed by the legacy global state
_NUMPY_GLOBAL_FNS = frozenset({
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "gamma", "geometric", "get_state", "gumbel",
    "hypergeometric", "laplace", "logistic", "lognormal", "logseries",
    "multinomial", "multivariate_normal", "negative_binomial", "normal",
    "pareto", "permutation", "poisson", "power", "rand", "randint", "randn",
    "random", "random_integers", "random_sample", "ranf", "rayleigh",
    "sample", "seed", "set_state", "shuffle", "standard_cauchy",
    "standard_exponential", "standard_gamma", "standard_normal",
    "standard_t", "triangular", "uniform", "vonmises", "wald", "weibull",
    "zipf",
})

#: wall-clock reads; monotonic counters included — any clock read makes
#: output depend on when/where the code ran, not only on (input, seed)
_WALLCLOCK_FNS = frozenset({
    "time.monotonic", "time.monotonic_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.process_time", "time.process_time_ns",
    "time.time", "time.time_ns",
    "datetime.date.today", "datetime.datetime.now", "datetime.datetime.today",
    "datetime.datetime.utcnow",
})

#: builtins that consume an iterable order-insensitively — feeding them a
#: set is safe, so they are DET003 near-misses, not findings
_ORDER_INSENSITIVE = frozenset({
    "all", "any", "frozenset", "len", "max", "min", "set", "sorted", "sum",
})

#: builtins that materialise their argument in iteration order
_ORDER_SENSITIVE = frozenset({"enumerate", "iter", "list", "tuple"})


def _is_set_expr(node: ast.expr, ctx: FileContext) -> bool:
    """Whether *node* is syntactically a set (literal, comp, or set() call)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return ctx.is_builtin(node.func, "set") or ctx.is_builtin(node.func, "frozenset")
    return False


@register
class UnseededRandomness(Rule):
    code = "DET001"
    name = "unseeded-randomness"
    rationale = (
        "all randomness must flow from an explicit seed through "
        "repro.utils.rng (ensure_rng/derive_seed/spawn); global RNG state "
        "breaks run-to-run and serial-vs-parallel reproducibility"
    )

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        dotted = ctx.resolve(node.func)
        if dotted is None:
            return
        if dotted == "random.Random" and not node.args and not node.keywords:
            ctx.report(self, node,
                       "random.Random() with no seed draws OS entropy; pass a "
                       "seed or use repro.utils.rng.ensure_rng")
            return
        if dotted.startswith("random."):
            suffix = dotted[len("random."):]
            if suffix in _RANDOM_GLOBAL_FNS:
                ctx.report(self, node,
                           f"global random.{suffix}() bypasses seed plumbing; "
                           "thread a random.Random through "
                           "repro.utils.rng.ensure_rng instead")
            return
        if dotted.startswith("numpy.random."):
            suffix = dotted[len("numpy.random."):]
            if suffix in ("default_rng", "RandomState"):
                if not node.args and not node.keywords:
                    ctx.report(self, node,
                               f"numpy.random.{suffix}() without a seed is "
                               "nondeterministic; derive one with "
                               "repro.utils.rng.derive_seed")
            elif suffix in _NUMPY_GLOBAL_FNS:
                ctx.report(self, node,
                           f"numpy.random.{suffix}() uses the global numpy "
                           "RNG; use a seeded Generator "
                           "(default_rng(derive_seed(...)))")


@register
class WallClock(Rule):
    code = "DET002"
    name = "wall-clock"
    rationale = (
        "library results must be a function of (input, seed), never of when "
        "or where they ran; timing belongs to benchmarks/ and the sanctioned "
        "repro.runtime.stats helpers"
    )

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if ctx.wallclock_allowed():
            return
        dotted = ctx.resolve(node.func)
        if dotted in _WALLCLOCK_FNS:
            ctx.report(self, node,
                       f"wall-clock read {dotted}() in library code; measure "
                       "durations through repro.runtime.stats.Stopwatch")


@register
class OrderingHazard(Rule):
    code = "DET003"
    name = "ordering-hazard"
    rationale = (
        "set iteration order is memory-address- and history-dependent, and "
        "id()/hash() sort keys are salted per process; either one leaks "
        "nondeterministic order into outputs (Theorem 4 plumbing relies on "
        "canonical vertex order)"
    )

    def visit_For(self, node: ast.For, ctx: FileContext) -> None:
        if _is_set_expr(node.iter, ctx):
            ctx.report(self, node,
                       "iterating a set accumulates in nondeterministic "
                       "order; wrap the iterable in sorted(...)")

    def visit_ListComp(self, node: ast.ListComp, ctx: FileContext) -> None:
        for gen in node.generators:
            if _is_set_expr(gen.iter, ctx):
                ctx.report(self, node,
                           "list comprehension over a set materialises "
                           "nondeterministic order; use sorted(...)")

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        self._check_order_sensitive_consumer(node, ctx)
        self._check_sort_key(node, ctx)

    def _check_order_sensitive_consumer(self, node: ast.Call, ctx: FileContext) -> None:
        consumer = None
        if isinstance(node.func, ast.Name):
            name = node.func.id
            if name in _ORDER_SENSITIVE and ctx.is_builtin(node.func, name):
                consumer = name
        elif isinstance(node.func, ast.Attribute) and node.func.attr == "join":
            consumer = "join"
        if consumer is None or not node.args:
            return
        if _is_set_expr(node.args[0], ctx):
            ctx.report(self, node,
                       f"{consumer}(...) over a set fixes a nondeterministic "
                       "order into the result; sort the set first")

    def _check_sort_key(self, node: ast.Call, ctx: FileContext) -> None:
        sorting = (
            (isinstance(node.func, ast.Name) and ctx.is_builtin(node.func, "sorted"))
            or (isinstance(node.func, ast.Attribute) and node.func.attr == "sort")
        )
        if not sorting:
            return
        for kw in node.keywords:
            if kw.arg != "key":
                continue
            if self._key_uses_identity(kw.value, ctx):
                ctx.report(self, node,
                           "sort key uses id()/hash(), which differ across "
                           "processes and runs; key on the value itself")

    @staticmethod
    def _key_uses_identity(key: ast.expr, ctx: FileContext) -> bool:
        if isinstance(key, ast.Name) and (
            ctx.is_builtin(key, "id") or ctx.is_builtin(key, "hash")
        ):
            return True
        if isinstance(key, ast.Lambda):
            for sub in ast.walk(key.body):
                if isinstance(sub, ast.Call) and (
                    ctx.is_builtin(sub.func, "id") or ctx.is_builtin(sub.func, "hash")
                ):
                    return True
        return False
