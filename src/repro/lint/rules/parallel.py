"""PAR001 — tasks handed to the parallel runtime must be picklable.

The executor ships task functions to worker processes under the
forkserver/spawn start method, which pickles them **by qualified name**:
lambdas and functions defined inside other functions cannot be pickled, so
every such call site would silently fall back to serial execution (the
runtime degrades gracefully) — paying pool startup for nothing on every run.
This rule catches the mistake at review time instead of as a perf mystery.

Checked entry points: ``parallel_map``/``parallel_map_with_stats``, the
``.map`` method of ``ParallelMap`` instances (recognised when constructed
directly or assigned to a local name), and ``functools.partial`` wrappers
around any of their task arguments.
"""

from __future__ import annotations

import ast

from repro.lint.engine import FileContext, Rule, register

_ENTRY_FUNCTIONS = frozenset({
    "repro.runtime.parallel_map",
    "repro.runtime.parallel_map_with_stats",
    "repro.runtime.executor.parallel_map",
    "repro.runtime.executor.parallel_map_with_stats",
})

_POOL_CLASSES = frozenset({
    "repro.runtime.ParallelMap",
    "repro.runtime.executor.ParallelMap",
})


@register
class PicklableTasks(Rule):
    code = "PAR001"
    name = "picklable-parallel-tasks"
    rationale = (
        "spawn/forkserver workers receive tasks by pickled qualified name; "
        "a lambda or closure forces a silent serial fallback on every call"
    )

    def check_module(self, tree: ast.Module, ctx: FileContext) -> None:
        nested = _nested_function_names(tree)
        pool_names = _pool_bindings(tree, ctx)
        for scope_path, node in _calls_with_scopes(tree):
            fn_arg = self._task_argument(node, ctx, pool_names)
            if fn_arg is None:
                continue
            self._check_callable(fn_arg, node, ctx, nested, scope_path)

    # ------------------------------------------------------------------

    def _task_argument(self, node: ast.Call, ctx: FileContext,
                       pool_names: set[str]) -> ast.expr | None:
        """The task-function argument of a recognised runtime entry point."""
        dotted = ctx.resolve(node.func)
        if dotted in _ENTRY_FUNCTIONS and node.args:
            return node.args[0]
        if isinstance(node.func, ast.Attribute) and node.func.attr == "map":
            receiver = node.func.value
            if isinstance(receiver, ast.Call) and ctx.resolve(receiver.func) in _POOL_CLASSES:
                return node.args[0] if node.args else None
            if isinstance(receiver, ast.Name) and receiver.id in pool_names:
                return node.args[0] if node.args else None
        return None

    def _check_callable(self, arg: ast.expr, call: ast.Call, ctx: FileContext,
                        nested: set[str], scope_path: tuple[str, ...]) -> None:
        if isinstance(arg, ast.Lambda):
            ctx.report(self, arg,
                       "lambda handed to the parallel runtime cannot be "
                       "pickled; define a module-level function")
            return
        if isinstance(arg, ast.Name) and scope_path and arg.id in nested:
            ctx.report(self, arg,
                       f"nested function {arg.id!r} handed to the parallel "
                       "runtime cannot be pickled; move it to module level")
            return
        if isinstance(arg, ast.Call) and ctx.resolve(arg.func) == "functools.partial":
            if arg.args:
                self._check_callable(arg.args[0], call, ctx, nested, scope_path)


def _calls_with_scopes(tree: ast.Module) -> list[tuple[tuple[str, ...], ast.Call]]:
    """Every Call node paired with the names of its enclosing functions."""
    out: list[tuple[tuple[str, ...], ast.Call]] = []

    def walk(node: ast.AST, scopes: tuple[str, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            child_scopes = scopes
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_scopes = scopes + (child.name,)
            if isinstance(child, ast.Call):
                out.append((scopes, child))
            walk(child, child_scopes)

    walk(tree, ())
    return out


def _nested_function_names(tree: ast.Module) -> set[str]:
    """Names of functions defined inside other functions, file-wide.

    File-wide rather than per-scope keeps the check simple; a module-level
    function shadowed by a same-named nested one is vanishingly rare, and the
    false positive is trivially resolved by renaming either.
    """
    nested: set[str] = set()

    def walk(node: ast.AST, in_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if in_function:
                    nested.add(child.name)
                walk(child, True)
            elif isinstance(child, ast.ClassDef):
                # methods pickle by qualified name; only function nesting
                # (true closures) breaks pickling
                walk(child, in_function)
            else:
                walk(child, in_function)

    walk(tree, False)
    return nested


def _pool_bindings(tree: ast.Module, ctx: FileContext) -> set[str]:
    """Local names assigned from a ``ParallelMap(...)`` constructor call."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if ctx.resolve(node.value.func) in _POOL_CLASSES:
                names.update(
                    t.id for t in node.targets if isinstance(t, ast.Name)
                )
    return names
