"""Shipped rule set; importing this package registers every rule."""

from __future__ import annotations

from repro.lint.rules import (
    api,
    arraycore,
    asynchazard,
    determinism,
    flow,
    interdet,
    mutation,
    parallel,
)

__all__ = [
    "api",
    "arraycore",
    "asynchazard",
    "determinism",
    "flow",
    "interdet",
    "mutation",
    "parallel",
]
