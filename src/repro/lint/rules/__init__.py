"""Shipped rule set; importing this package registers every rule."""

from __future__ import annotations

from repro.lint.rules import api, arraycore, determinism, mutation, parallel

__all__ = ["api", "arraycore", "determinism", "mutation", "parallel"]
