"""SARIF 2.1.0 report rendering for CI code-scanning annotation.

One run, one driver (``repro.lint``), the full rule catalogue embedded so
code-scanning UIs can show each rule's rationale, and one result per
finding. The finding's baseline fingerprint rides in ``partialFingerprints``
so scanning backends track findings across line-shifting edits the same way
the committed baseline file does.

Rendering is byte-deterministic: findings are sorted, keys are sorted, and
separators are fixed — the shuffled-input acceptance test compares SARIF
bytes exactly like the text and JSON formats.
"""

from __future__ import annotations

import json
from typing import Any

from repro.lint.findings import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_catalogue() -> list[dict[str, Any]]:
    from repro.lint.engine import PROGRAM_RULES, RULES

    merged: dict[str, tuple[str, str]] = {}
    for code, cls in RULES.items():
        merged[code] = (cls.name, cls.rationale)
    for code, pcls in PROGRAM_RULES.items():
        merged[code] = (pcls.name, pcls.rationale)
    return [
        {
            "fullDescription": {"text": rationale},
            "id": code,
            "name": name,
            "shortDescription": {"text": name},
        }
        for code, (name, rationale) in sorted(merged.items())
    ]


def render_sarif(findings: list[Finding]) -> str:
    """A canonical SARIF 2.1.0 document for *findings*."""
    results = [
        {
            "level": "error",
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {
                            "startColumn": f.col + 1,
                            "startLine": f.line,
                        },
                    }
                }
            ],
            "message": {"text": f.message},
            "partialFingerprints": {"reproLint/v1": f.fingerprint},
            "ruleId": f.code,
        }
        for f in sorted(findings)
    ]
    payload = {
        "$schema": SARIF_SCHEMA,
        "runs": [
            {
                "columnKind": "utf16CodeUnits",
                "results": results,
                "tool": {
                    "driver": {
                        "informationUri": "https://example.invalid/repro-lint",
                        "name": "repro.lint",
                        "rules": _rule_catalogue(),
                    }
                },
            }
        ],
        "version": SARIF_VERSION,
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True) + "\n"
