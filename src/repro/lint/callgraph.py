"""Whole-program layer, part 1: per-module summaries and the call graph.

:func:`summarize_module` reduces one parsed file to a :class:`ModuleSummary`
— every function with its resolved outgoing calls, a conservative
intra-procedural dataflow skeleton (which *atoms* feed each call argument
and the return value), the nondeterminism primitives it touches, and its
declared boundary markers. Summaries are plain JSON-serialisable data: the
content-hash cache (:mod:`repro.lint.cache`) persists them so warm runs
rebuild the program without re-parsing a single file.

:class:`Program` stitches summaries together: a global function index keyed
by qualified name (``repro.service.canon.canonicalize``,
``repro.service.cache.ArtifactCache.put``), resolution of dotted references
through package re-exports (``from repro.core import anonymize`` reaches
``repro.core.anonymize.anonymize`` by following ``repro/core/__init__``'s
import table), and the call-edge relation the interprocedural analyses
(:mod:`repro.lint.dataflow`) run over.

Precision envelope (deliberate, documented):

* the call graph is **conservative over names it can resolve** — direct
  calls, imported names, ``self.method()``, and ``self.attr.method()`` where
  ``self.attr`` was assigned a constructor result in the same class.
  Calls through arbitrary objects, dicts of callables, or higher-order
  dispatch are left unresolved; taint still propagates *through* an
  unresolved call (arguments to result) but not *into* it;
* intra-procedural taint is a single forward pass per function: assignments
  kill, augmented assignments accumulate, attribute **stores and plain
  reads** drop taint (object graphs are not modelled — an object holding
  tainted and clean fields would otherwise smear taint across all of them),
  while *method calls* keep receiver taint (``ids.copy()`` stays tainted)
  and secret attributes (``.seed``/``.tenant`` in service code) are sources
  in their own right. This under-approximates flows through containers held
  across statements and loops that launder values backwards — the rules
  built on it prefer silence over noise.

Atoms — the currency of the dataflow skeleton, kept JSON-friendly:

* ``["src", kind, line, desc]`` — a taint source observed in this function
  (``kind`` is ``"identity"`` or ``"secret"``);
* ``["param", i]`` — the function's *i*-th positional parameter
  (``self``/``cls`` excluded for methods);
* ``["call", j]`` — the return value of this function's *j*-th call site,
  evaluated interprocedurally against the callee's summary.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any

from repro.lint.suppressions import Suppressions

Atom = tuple[Any, ...]


def module_name_for(relpath: str) -> str:
    """Dotted module name for a posix-relative ``.py`` path.

    ``src/repro/service/canon.py`` maps to ``repro.service.canon``; a path
    with no ``src`` component maps from its full relative path, so scratch
    trees in tests form consistent (if synthetic) package names.
    """
    parts = relpath[:-3].split("/") if relpath.endswith(".py") else relpath.split("/")
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p) or relpath


@dataclass
class CallSite:
    """One call expression inside a function, with its argument dataflow."""

    index: int
    line: int
    col: int
    #: resolved dotted target ("" when unresolvable)
    dotted: str
    #: raw receiver chain text for heuristic sinks ("self.cache.put", ...)
    chain: str
    #: atoms feeding each positional argument
    args: list[list[Atom]]
    #: atoms feeding keyword arguments, by keyword name
    kwargs: dict[str, list[Atom]]
    #: atoms of the method receiver (``ids.copy()`` keeps ``ids`` taint)
    recv: list[Atom] = field(default_factory=list)

    def to_payload(self) -> dict[str, Any]:
        return {
            "args": [sorted(map(list, a)) for a in self.args],
            "chain": self.chain,
            "col": self.col,
            "dotted": self.dotted,
            "index": self.index,
            "kwargs": {k: sorted(map(list, v))
                       for k, v in sorted(self.kwargs.items())},
            "line": self.line,
            "recv": sorted(map(list, self.recv)),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "CallSite":
        return cls(
            index=payload["index"], line=payload["line"], col=payload["col"],
            dotted=payload["dotted"], chain=payload["chain"],
            args=[[tuple(a) for a in arg] for arg in payload["args"]],
            kwargs={k: [tuple(a) for a in v]
                    for k, v in payload["kwargs"].items()},
            recv=[tuple(a) for a in payload["recv"]],
        )


@dataclass
class FunctionInfo:
    """Summary of one function: identity, calls, dataflow, determinism."""

    qname: str
    name: str
    line: int
    col: int
    is_async: bool
    class_name: str = ""
    #: parameter names in ``("param", i)`` numbering order (no self/cls)
    params: list[str] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    #: atoms reaching any return/yield statement
    returns: list[Atom] = field(default_factory=list)
    #: nondeterminism primitives used directly: (line, description)
    nondet: list[tuple[int, str]] = field(default_factory=list)
    #: codes named in a ``# repro-lint: boundary=...`` marker on the def
    boundary: tuple[str, ...] = ()

    def to_payload(self) -> dict[str, Any]:
        return {
            "boundary": sorted(self.boundary),
            "calls": [c.to_payload() for c in self.calls],
            "class_name": self.class_name,
            "col": self.col,
            "is_async": self.is_async,
            "line": self.line,
            "name": self.name,
            "nondet": sorted(map(list, self.nondet)),
            "params": list(self.params),
            "qname": self.qname,
            "returns": sorted(map(list, self.returns)),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "FunctionInfo":
        return cls(
            qname=payload["qname"], name=payload["name"],
            line=payload["line"], col=payload["col"],
            is_async=payload["is_async"], class_name=payload["class_name"],
            params=list(payload["params"]),
            calls=[CallSite.from_payload(c) for c in payload["calls"]],
            returns=[tuple(a) for a in payload["returns"]],
            nondet=[(line, desc) for line, desc in payload["nondet"]],
            boundary=tuple(payload["boundary"]),
        )


@dataclass
class ModuleSummary:
    """Everything the whole-program pass needs to know about one file."""

    module: str
    relpath: str
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: local name -> dotted target (imports + this module's own top defs)
    exports: dict[str, str] = field(default_factory=dict)

    def to_payload(self) -> dict[str, Any]:
        return {
            "exports": dict(sorted(self.exports.items())),
            "functions": {q: f.to_payload()
                          for q, f in sorted(self.functions.items())},
            "module": self.module,
            "relpath": self.relpath,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "ModuleSummary":
        return cls(
            module=payload["module"], relpath=payload["relpath"],
            functions={q: FunctionInfo.from_payload(f)
                       for q, f in payload["functions"].items()},
            exports=dict(payload["exports"]),
        )


# ---------------------------------------------------------------------------
# summary construction
# ---------------------------------------------------------------------------


def _import_table(tree: ast.Module, module: str) -> dict[str, str]:
    """Local name -> fully dotted origin, relative imports resolved."""
    package = module.rsplit(".", 1)[0] if "." in module else module
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    table[root] = root
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                up = package.split(".")
                # level 1 = current package, each further level pops one
                up = up[: len(up) - (node.level - 1)]
                base = ".".join(up + ([base] if base else []))
            if not base:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                table[alias.asname or alias.name] = f"{base}.{alias.name}"
    return table


def _attr_types(cls_node: ast.ClassDef, imports: dict[str, str],
                module: str, local_classes: set[str]) -> dict[str, str]:
    """``self.attr`` -> dotted class, from constructor-call assignments."""
    out: dict[str, str] = {}
    for node in ast.walk(cls_node):
        if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
            continue
        func = node.value.func
        dotted = None
        if isinstance(func, ast.Name):
            if func.id in imports:
                dotted = imports[func.id]
            elif func.id in local_classes:
                dotted = f"{module}.{func.id}"
        elif isinstance(func, ast.Attribute):
            parts = _chain_parts(func)
            if parts and parts[0] in imports:
                dotted = ".".join([imports[parts[0]]] + parts[1:])
        if dotted is None:
            continue
        for target in node.targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                out[target.attr] = dotted
    return out


def _chain_parts(node: ast.expr) -> list[str]:
    """``a.b.c`` -> ["a", "b", "c"]; [] when the chain has a non-name base."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return []
    parts.append(node.id)
    return list(reversed(parts))


class _FlowConfig:
    """The subset of LintConfig the scanner consults (duck-typed to avoid
    an import cycle with the engine module)."""

    __slots__ = ("secret_attrs", "service_paths")

    def __init__(self, config: Any) -> None:
        self.secret_attrs = frozenset(config.secret_attrs)
        self.service_paths = tuple(config.service_paths)


class _FunctionScanner:
    """Single forward pass over one function body.

    Builds the env (name -> atoms), registers call sites bottom-up while
    evaluating expressions, and records return atoms and nondeterminism
    primitives.
    """

    def __init__(self, info: FunctionInfo, imports: dict[str, str],
                 module: str, top_defs: set[str], class_name: str,
                 methods: set[str], attr_types: dict[str, str],
                 in_service: bool, wallclock_ok: bool,
                 flow: _FlowConfig) -> None:
        self.info = info
        self.imports = imports
        self.module = module
        self.top_defs = top_defs
        self.class_name = class_name
        self.methods = methods
        self.attr_types = attr_types
        self.in_service = in_service
        self.wallclock_ok = wallclock_ok
        self.flow = flow
        self.env: dict[str, list[Atom]] = {}

    # -- resolution -----------------------------------------------------

    def resolve_call(self, func: ast.expr) -> tuple[str, str]:
        """(dotted target or "", receiver chain text or "")."""
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.imports:
                return self.imports[name], name
            if name in self.top_defs:
                return f"{self.module}.{name}", name
            return "", name
        if isinstance(func, ast.Attribute):
            parts = _chain_parts(func)
            if not parts:
                return "", ""
            chain = ".".join(parts)
            if parts[0] == "self" and self.class_name:
                if len(parts) == 2 and parts[1] in self.methods:
                    return f"{self.module}.{self.class_name}.{parts[1]}", chain
                if len(parts) >= 3 and parts[1] in self.attr_types:
                    return ".".join([self.attr_types[parts[1]]] + parts[2:]), chain
                return "", chain
            if parts[0] in self.imports:
                return ".".join([self.imports[parts[0]]] + parts[1:]), chain
            return "", chain
        return "", ""

    # -- expression atoms ------------------------------------------------

    def atoms(self, node: ast.expr | None) -> list[Atom]:
        if node is None:
            return []
        if isinstance(node, ast.Name):
            return list(self.env.get(node.id, []))
        if isinstance(node, ast.Attribute):
            # Plain attribute reads DROP base taint: objects are mixed
            # containers (a Job holds both the raw graph and the sanitized
            # render results) and field-insensitive smearing drowns the
            # report in noise. Method calls keep receiver taint (handled in
            # ``_call_atoms``), and secret attributes are sources in their
            # own right regardless of the base.
            self.atoms(node.value)
            if self.in_service and node.attr in self.flow.secret_attrs:
                return [("src", "secret", node.lineno,
                         f".{node.attr} attribute read")]
            return []
        if isinstance(node, ast.Call):
            return self._call_atoms(node)
        if isinstance(node, ast.Await):
            return self.atoms(node.value)
        if isinstance(node, (ast.BinOp,)):
            return self.atoms(node.left) + self.atoms(node.right)
        if isinstance(node, ast.BoolOp):
            out: list[Atom] = []
            for value in node.values:
                out += self.atoms(value)
            return out
        if isinstance(node, ast.UnaryOp):
            return self.atoms(node.operand)
        if isinstance(node, ast.IfExp):
            # the test contributes control flow, not data
            self.atoms(node.test)
            return self.atoms(node.body) + self.atoms(node.orelse)
        if isinstance(node, ast.Compare):
            self.atoms(node.left)
            for comp in node.comparators:
                self.atoms(comp)
            return []
        if isinstance(node, ast.JoinedStr):
            out = []
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out += self.atoms(value.value)
            return out
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            out = []
            for elt in node.elts:
                if isinstance(elt, ast.Starred):
                    out += self.atoms(elt.value)
                else:
                    out += self.atoms(elt)
            return out
        if isinstance(node, ast.Dict):
            out = []
            for key in node.keys:
                if key is not None:
                    out += self.atoms(key)
            for value in node.values:
                out += self.atoms(value)
            return out
        if isinstance(node, ast.Subscript):
            self.atoms(node.slice)
            return self.atoms(node.value)
        if isinstance(node, ast.Starred):
            return self.atoms(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._comp_atoms(node.generators, [node.elt])
        if isinstance(node, ast.DictComp):
            return self._comp_atoms(node.generators, [node.key, node.value])
        if isinstance(node, ast.Lambda):
            self.atoms(node.body)
            return []
        if isinstance(node, ast.NamedExpr):
            atoms = self.atoms(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = atoms
            return atoms
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            value = node.value if isinstance(node, ast.Yield) else node.value
            atoms = self.atoms(value)
            self.info.returns += atoms
            return []
        return []

    def _comp_atoms(self, generators: list[ast.comprehension],
                    results: list[ast.expr]) -> list[Atom]:
        for gen in generators:
            source = self.atoms(gen.iter)
            self._bind_target(gen.target, source)
            for cond in gen.ifs:
                self.atoms(cond)
        out: list[Atom] = []
        for expr in results:
            out += self.atoms(expr)
        return out

    def _call_atoms(self, node: ast.Call) -> list[Atom]:
        dotted, chain = self.resolve_call(node.func)
        recv: list[Atom] = []
        if isinstance(node.func, ast.Attribute):
            recv = self.atoms(node.func.value)
        args = [self.atoms(arg) for arg in node.args]
        kwargs = {kw.arg: self.atoms(kw.value)
                  for kw in node.keywords if kw.arg is not None}
        for kw in node.keywords:
            if kw.arg is None:  # **kwargs splat
                kwargs.setdefault("**", []).extend(self.atoms(kw.value))
        self._note_nondet(node, dotted)
        site = CallSite(index=len(self.info.calls), line=node.lineno,
                        col=node.col_offset, dotted=dotted, chain=chain,
                        args=args, kwargs=kwargs, recv=recv)
        self.info.calls.append(site)
        return [("call", site.index)]

    def _note_nondet(self, node: ast.Call, dotted: str) -> None:
        if not dotted:
            return
        # Import here: determinism.py owns the primitive catalogues and
        # importing it at module level would cycle through the engine.
        from repro.lint.rules.determinism import (
            _NUMPY_GLOBAL_FNS,
            _RANDOM_GLOBAL_FNS,
            _WALLCLOCK_FNS,
        )

        if dotted in _WALLCLOCK_FNS:
            if not self.wallclock_ok:
                self.info.nondet.append(
                    (node.lineno, f"wall-clock read {dotted}()"))
        elif dotted.startswith("random."):
            suffix = dotted[len("random."):]
            if suffix in _RANDOM_GLOBAL_FNS:
                self.info.nondet.append(
                    (node.lineno, f"global random.{suffix}()"))
            elif suffix == "Random" and not node.args and not node.keywords:
                self.info.nondet.append(
                    (node.lineno, "OS-seeded random.Random()"))
        elif dotted.startswith("numpy.random."):
            suffix = dotted[len("numpy.random."):]
            if suffix in _NUMPY_GLOBAL_FNS:
                self.info.nondet.append(
                    (node.lineno, f"global numpy.random.{suffix}()"))
            elif suffix in ("default_rng", "RandomState") and not node.args \
                    and not node.keywords:
                self.info.nondet.append(
                    (node.lineno, f"unseeded numpy.random.{suffix}()"))
        elif dotted in ("os.urandom", "uuid.uuid4", "secrets.token_bytes",
                        "secrets.token_hex", "secrets.randbelow"):
            self.info.nondet.append((node.lineno, f"entropy read {dotted}()"))

    # -- statements ------------------------------------------------------

    def _bind_target(self, target: ast.expr, atoms: list[Atom]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = list(atoms)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, atoms)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, atoms)
        # attribute / subscript stores drop taint (object graph not modelled)

    def scan(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._scan_stmt(stmt)

    def _scan_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            atoms = self.atoms(stmt.value)
            for target in stmt.targets:
                self._bind_target(target, atoms)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind_target(stmt.target, self.atoms(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            atoms = self.atoms(stmt.value)
            if isinstance(stmt.target, ast.Name):
                merged = self.env.get(stmt.target.id, []) + atoms
                self.env[stmt.target.id] = merged
        elif isinstance(stmt, ast.Return):
            self.info.returns += self.atoms(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self.atoms(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind_target(stmt.target, self.atoms(stmt.iter))
            self._check_set_iteration(stmt.iter)
            self.scan(stmt.body)
            self.scan(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.atoms(stmt.test)
            self.scan(stmt.body)
            self.scan(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self.atoms(stmt.test)
            self.scan(stmt.body)
            self.scan(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                atoms = self.atoms(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, atoms)
            self.scan(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.scan(stmt.body)
            for handler in stmt.handlers:
                self.scan(handler.body)
            self.scan(stmt.orelse)
            self.scan(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # nested defs: calls inside are attributed to the enclosing
            # function; a fresh param binding is not modelled
            self.scan(stmt.body)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            if isinstance(stmt, ast.Raise) and stmt.exc is not None:
                self.atoms(stmt.exc)
            if isinstance(stmt, ast.Assert):
                self.atoms(stmt.test)
        elif isinstance(stmt, ast.Match):
            self.atoms(stmt.subject)
            for case in stmt.cases:
                self.scan(case.body)

    def _check_set_iteration(self, iter_expr: ast.expr) -> None:
        """Set iteration is an ordering nondeterminism source (DET010)."""
        if isinstance(iter_expr, (ast.Set, ast.SetComp)):
            self.info.nondet.append(
                (iter_expr.lineno, "iteration over a set expression"))
        elif isinstance(iter_expr, ast.Call) and isinstance(iter_expr.func, ast.Name):
            if iter_expr.func.id in ("set", "frozenset") \
                    and iter_expr.func.id not in self.imports:
                self.info.nondet.append(
                    (iter_expr.lineno, "iteration over a set expression"))


def _in_any(relpath: str, fragments: tuple[str, ...]) -> bool:
    probe = "/" + relpath
    return any(fragment in probe for fragment in fragments)


def summarize_module(tree: ast.Module, relpath: str, config: Any,
                     suppressions: Suppressions | None = None) -> ModuleSummary:
    """Build the whole-program summary of one parsed module."""
    module = module_name_for(relpath)
    imports = _import_table(tree, module)
    flow = _FlowConfig(config)
    in_service = _in_any(relpath, tuple(config.service_paths))
    parts = relpath.split("/")
    wallclock_ok = (
        any(part in config.wallclock_allowed_dirs for part in parts)
        or any(relpath.endswith(sfx) for sfx in config.wallclock_allowed_files)
    )

    top_defs: set[str] = set()
    local_classes: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            top_defs.add(node.name)
        elif isinstance(node, ast.ClassDef):
            top_defs.add(node.name)
            local_classes.add(node.name)

    summary = ModuleSummary(module=module, relpath=relpath)
    summary.exports.update(imports)
    for name in sorted(top_defs):
        summary.exports[name] = f"{module}.{name}"

    def scan_function(node: ast.FunctionDef | ast.AsyncFunctionDef,
                      class_name: str, methods: set[str],
                      attr_types: dict[str, str]) -> None:
        qname = (f"{module}.{class_name}.{node.name}" if class_name
                 else f"{module}.{node.name}")
        info = FunctionInfo(
            qname=qname, name=node.name, line=node.lineno,
            col=node.col_offset, class_name=class_name,
            is_async=isinstance(node, ast.AsyncFunctionDef))
        if suppressions is not None:
            info.boundary = tuple(sorted(suppressions.boundary_codes(node.lineno)))
        scanner = _FunctionScanner(info, imports, module, top_defs,
                                   class_name, methods, attr_types,
                                   in_service, wallclock_ok, flow)
        positional = list(node.args.posonlyargs) + list(node.args.args)
        if class_name and positional and positional[0].arg in ("self", "cls"):
            positional = positional[1:]
        for i, arg in enumerate(positional + list(node.args.kwonlyargs)):
            scanner.env[arg.arg] = [("param", i)]
            info.params.append(arg.arg)
        scanner.scan(node.body)
        summary.functions[qname] = info

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scan_function(node, "", set(), {})
        elif isinstance(node, ast.ClassDef):
            methods = {s.name for s in node.body
                       if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))}
            attr_types = _attr_types(node, imports, module, local_classes)
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    scan_function(stmt, node.name, methods, attr_types)
    return summary


# ---------------------------------------------------------------------------
# the program
# ---------------------------------------------------------------------------


class Program:
    """A set of module summaries with cross-module name resolution."""

    def __init__(self, summaries: list[ModuleSummary]) -> None:
        self.modules: dict[str, ModuleSummary] = {}
        self.functions: dict[str, FunctionInfo] = {}
        for summary in sorted(summaries, key=lambda s: s.relpath):
            self.modules[summary.module] = summary
            self.functions.update(summary.functions)
        self._resolve_cache: dict[str, str] = {}

    def relpath_of(self, qname: str) -> str:
        """The file a function was defined in (for reporting)."""
        info = self.functions[qname]
        for summary in self.modules.values():
            if info.qname in summary.functions:
                return summary.relpath
        raise KeyError(qname)  # pragma: no cover - functions map is derived

    def resolve(self, dotted: str) -> str:
        """Follow re-exports until *dotted* names a known function (or not).

        Returns the resolved qualified name when the reference lands on a
        function in the program, else the most-resolved dotted form — rules
        match the latter against configured external names (``random.random``,
        ``repro.core.anonymize.anonymize`` when ``repro.core`` is outside the
        linted tree).
        """
        if not dotted:
            return ""
        cached = self._resolve_cache.get(dotted)
        if cached is not None:
            return cached
        current = dotted
        for _ in range(16):  # re-export chains are short; bound hard anyway
            if current in self.functions:
                break
            parts = current.split(".")
            stepped = False
            for cut in range(len(parts) - 1, 0, -1):
                mod = ".".join(parts[:cut])
                summary = self.modules.get(mod)
                if summary is None:
                    continue
                rest = parts[cut:]
                target = summary.exports.get(rest[0])
                if target is None:
                    break
                candidate = ".".join([target] + rest[1:])
                if candidate != current:
                    current = candidate
                    stepped = True
                break
            if not stepped:
                break
        self._resolve_cache[dotted] = current
        return current

    def sorted_functions(self) -> list[FunctionInfo]:
        """Functions in deterministic (qname) order."""
        return [self.functions[q] for q in sorted(self.functions)]
