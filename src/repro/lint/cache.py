"""Content-hash-keyed per-module summary cache.

Warm runs are the whole point of running the whole-program pass inside
tier-1: parsing and walking every file dominates the cold wall time, so the
cache persists everything stage 1 produces for a file — its file-rule
findings, its suppression table (with the file-pass usage accounting), and
its call-graph summary — keyed by a digest of the source *content* plus
everything else that could change the result (tool version, relative path,
config, rule selection). A warm hit skips ``ast.parse`` and every file rule;
the program stages always run fresh, because their results depend on the
whole input set.

Keys are pure content hashes, so the cache needs no invalidation protocol:
an edit changes the digest, stale entries are simply never read again.
Entries are written atomically (tmp + rename) and any unreadable or
version-skewed entry is treated as a miss.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import TYPE_CHECKING, Any

from repro.lint.callgraph import ModuleSummary
from repro.lint.findings import Finding
from repro.lint.suppressions import Suppressions

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import FileState, LintConfig

#: bump to invalidate every existing cache entry (rule/semantic changes)
CACHE_VERSION = 1


def _config_digest(config: "LintConfig") -> str:
    """A frozen dataclass repr is deterministic and covers every knob."""
    return hashlib.sha256(repr(config).encode("utf-8")).hexdigest()[:16]


class SummaryCache:
    """One directory of ``<key>.json`` stage-1 results."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def key(self, relpath: str, source: str, config: "LintConfig",
            select: frozenset[str] | None) -> str:
        selected = "all" if select is None else ",".join(sorted(select))
        blob = "|".join((
            str(CACHE_VERSION),
            relpath,
            _config_digest(config),
            selected,
            hashlib.sha256(source.encode("utf-8")).hexdigest(),
        ))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def load(self, key: str, relpath: str, source: str) -> "FileState | None":
        from repro.lint.engine import FileState  # local: import cycle

        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.misses += 1
            return None
        try:
            if payload["version"] != CACHE_VERSION:
                self.misses += 1
                return None
            findings = [Finding(**entry) for entry in payload["findings"]]
            suppressions = Suppressions.from_payload(payload["suppressions"])
            summary = (ModuleSummary.from_payload(payload["summary"])
                       if payload["summary"] is not None else None)
        except (KeyError, TypeError, ValueError, IndexError):
            self.misses += 1
            return None
        self.hits += 1
        return FileState(relpath=relpath, lines=source.splitlines(),
                         suppressions=suppressions, findings=findings,
                         summary=summary)

    def store(self, key: str, state: "FileState") -> None:
        payload: dict[str, Any] = {
            "findings": [
                {"path": f.path, "line": f.line, "col": f.col, "code": f.code,
                 "message": f.message, "line_text": f.line_text}
                for f in state.findings
            ],
            "suppressions": state.suppressions.to_payload(),
            "summary": (state.summary.to_payload()
                        if state.summary is not None else None),
            "version": CACHE_VERSION,
        }
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        try:
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp, self._path(key))
        except OSError:  # cache is best-effort; a failed write is a no-op
            try:
                os.unlink(tmp)
            except (OSError, UnboundLocalError):
                pass
