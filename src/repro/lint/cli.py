"""``python -m repro.lint`` — the linter's command-line front end.

Exit codes (pinned, matching the repo's CLI error-path conventions):

* ``0`` — no non-baselined findings and no stale baseline entries;
* ``1`` — findings were reported, or the baseline holds stale entries
  (fingerprints matching no current finding) and ``--prune-baseline`` was
  not given;
* ``2`` — usage error (unknown path, unknown rule code, unreadable or
  malformed baseline) — argparse's own convention for bad invocations.

Arguments are validated eagerly, before any file is linted, so a typo'd
rule code or baseline path fails fast instead of after a full tree walk.

``--cache-dir DIR`` enables the content-hash summary cache: the per-file
stage is skipped for unchanged files, which keeps warm whole-program runs
fast enough to gate tier-1. ``--format sarif`` emits SARIF 2.1.0 for CI
code-scanning upload. All three formats are byte-deterministic.
"""

from __future__ import annotations

import argparse
import sys

from repro.lint.baseline import (
    fingerprint_findings,
    load_baseline_entries,
    write_baseline,
    write_baseline_entries,
)
from repro.lint.cache import SummaryCache
from repro.lint.engine import PROGRAM_RULES, RULES, all_rule_codes, lint_paths
from repro.lint.findings import Finding, render_json, render_text
from repro.lint.sarif import render_sarif
from repro.utils.validation import ReproError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=("AST + whole-program flow linter for this repository "
                     "(determinism, privacy taint, async hazards)"),
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="report format (json and sarif are byte-deterministic)")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="suppress findings whose fingerprints appear in FILE; "
                             "stale entries (matching nothing) exit 1")
    parser.add_argument("--write-baseline", metavar="FILE", default=None,
                        help="write the current findings as a new baseline and exit 0")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="rewrite --baseline without its stale entries "
                             "instead of failing on them")
    parser.add_argument("--select", metavar="CODES", default=None,
                        help="comma-separated rule codes to run (default: all)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="content-hash summary cache directory "
                             "(warm runs skip parsing unchanged files)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _parse_select(raw: str | None) -> frozenset[str] | None:
    if raw is None:
        return None
    codes = frozenset(c.strip().upper() for c in raw.split(",") if c.strip())
    known = set(all_rule_codes())
    unknown = sorted(codes - known)
    if unknown:
        raise ReproError(
            f"unknown rule code(s): {', '.join(unknown)}; "
            f"available: {', '.join(all_rule_codes())}"
        )
    if not codes:
        raise ReproError("--select got no rule codes")
    return codes


def _list_rules() -> str:
    lines = []
    catalogue: dict[str, tuple[str, str]] = {}
    for code, cls in RULES.items():
        catalogue[code] = (cls.name, cls.rationale)
    for code, pcls in PROGRAM_RULES.items():
        catalogue[code] = (pcls.name, pcls.rationale)
    for code in sorted(catalogue):
        name, rationale = catalogue[code]
        lines.append(f"{code}  {name}\n    {rationale}\n")
    return "".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        sys.stdout.write(_list_rules())
        return 0
    stale: list[dict[str, str]] = []
    try:
        if args.prune_baseline and args.baseline is None:
            raise ReproError("--prune-baseline requires --baseline")
        select = _parse_select(args.select)
        entries = (load_baseline_entries(args.baseline)
                   if args.baseline else [])
        baseline = {entry["fingerprint"] for entry in entries}
        cache = SummaryCache(args.cache_dir) if args.cache_dir else None
        findings = lint_paths(list(args.paths), select=select, cache=cache)
        findings = fingerprint_findings(findings)
        if args.write_baseline is not None:
            write_baseline(args.write_baseline, findings)
            sys.stderr.write(
                f"wrote baseline {args.write_baseline} "
                f"({len(findings)} finding(s))\n"
            )
            return 0
        current = {f.fingerprint for f in findings}
        stale = [entry for entry in entries
                 if entry["fingerprint"] not in current]
        if stale and args.prune_baseline:
            live = [entry for entry in entries
                    if entry["fingerprint"] in current]
            write_baseline_entries(args.baseline, live)
            sys.stderr.write(
                f"pruned {len(stale)} stale entr"
                f"{'y' if len(stale) == 1 else 'ies'} from {args.baseline}\n"
            )
            stale = []
        reported: list[Finding] = []
        baselined = 0
        for finding in findings:
            if baseline and finding.fingerprint in baseline:
                baselined += 1
            else:
                reported.append(finding)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        sys.stdout.write(render_json(reported, baselined=baselined))
    elif args.format == "sarif":
        sys.stdout.write(render_sarif(reported))
    else:
        sys.stdout.write(render_text(reported))
        summary = f"{len(reported)} finding(s)"
        if baselined:
            summary += f", {baselined} baselined"
        print(summary, file=sys.stderr)
    for entry in stale:
        sys.stderr.write(
            "stale baseline entry (matches no current finding): "
            f"{entry.get('path', '?')} {entry.get('code', '?')} "
            f"{entry['fingerprint']} — fix with --prune-baseline\n"
        )
    return 1 if (reported or stale) else 0
