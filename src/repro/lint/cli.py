"""``python -m repro.lint`` — the linter's command-line front end.

Exit codes (pinned, matching the repo's CLI error-path conventions):

* ``0`` — no non-baselined findings;
* ``1`` — findings were reported;
* ``2`` — usage error (unknown path, unknown rule code, unreadable or
  malformed baseline) — argparse's own convention for bad invocations.

Arguments are validated eagerly, before any file is linted, so a typo'd
rule code or baseline path fails fast instead of after a full tree walk.
"""

from __future__ import annotations

import argparse
import sys

from repro.lint.baseline import fingerprint_findings, load_baseline, write_baseline
from repro.lint.engine import RULES, lint_paths
from repro.lint.findings import Finding, render_json, render_text
from repro.utils.validation import ReproError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based determinism & invariant linter for this repository",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (json output is byte-deterministic)")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="suppress findings whose fingerprints appear in FILE")
    parser.add_argument("--write-baseline", metavar="FILE", default=None,
                        help="write the current findings as a new baseline and exit 0")
    parser.add_argument("--select", metavar="CODES", default=None,
                        help="comma-separated rule codes to run (default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _parse_select(raw: str | None) -> frozenset[str] | None:
    if raw is None:
        return None
    codes = frozenset(c.strip().upper() for c in raw.split(",") if c.strip())
    unknown = sorted(codes - set(RULES))
    if unknown:
        raise ReproError(
            f"unknown rule code(s): {', '.join(unknown)}; "
            f"available: {', '.join(sorted(RULES))}"
        )
    if not codes:
        raise ReproError("--select got no rule codes")
    return codes


def _list_rules() -> str:
    lines = []
    for code in sorted(RULES):
        rule = RULES[code]
        lines.append(f"{code}  {rule.name}\n    {rule.rationale}\n")
    return "".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        sys.stdout.write(_list_rules())
        return 0
    try:
        select = _parse_select(args.select)
        baseline = load_baseline(args.baseline) if args.baseline else None
        findings = lint_paths(list(args.paths), select=select)
        findings = fingerprint_findings(findings)
        if args.write_baseline is not None:
            write_baseline(args.write_baseline, findings)
            sys.stderr.write(
                f"wrote baseline {args.write_baseline} "
                f"({len(findings)} finding(s))\n"
            )
            return 0
        reported: list[Finding] = []
        baselined = 0
        for finding in findings:
            if baseline is not None and finding.fingerprint in baseline:
                baselined += 1
            else:
                reported.append(finding)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        sys.stdout.write(render_json(reported, baselined=baselined))
    else:
        sys.stdout.write(render_text(reported))
        summary = f"{len(reported)} finding(s)"
        if baselined:
            summary += f", {baselined} baselined"
        print(summary, file=sys.stderr)
    return 1 if reported else 0
