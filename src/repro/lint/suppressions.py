"""Per-line ``# repro-lint: disable=RULE`` suppression comments.

Syntax (trailing on the reported line, or alone on the line directly above)::

    self._t0 = time.perf_counter()  # repro-lint: disable=DET002 -- stats timer
    # repro-lint: disable=DET003 -- consumer sorts downstream
    for v in vertex_set:
        ...

Several codes may be given comma-separated, and ``disable=all`` silences
every rule for that line. The text after ``--`` is a free-form reason; the
project convention (enforced in review, not by the tool) is that every
shipped suppression carries one.

Comments are located with :mod:`tokenize`, so the marker inside a string
literal is never mistaken for a suppression.
"""

from __future__ import annotations

import io
import re
import tokenize

_PATTERN = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<codes>[A-Za-z0-9_,\s]+?)\s*(?:--\s*(?P<reason>.*))?$"
)


class Suppressions:
    """The suppression table of one source file."""

    def __init__(self, source: str) -> None:
        #: line number -> set of suppressed codes ("ALL" suppresses any code)
        self._by_line: dict[int, set[str]] = {}
        #: comment-only lines, whose suppressions also cover the next line
        standalone: list[int] = []
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, SyntaxError, IndentationError):
            return
        code_lines: set[int] = set()
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                match = _PATTERN.search(tok.string)
                if match is None:
                    continue
                codes = {
                    c.strip().upper() for c in match.group("codes").split(",") if c.strip()
                }
                line = tok.start[0]
                self._by_line.setdefault(line, set()).update(codes)
                if tok.line.strip().startswith("#"):
                    standalone.append(line)
            elif tok.type not in (
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENDMARKER,
            ):
                code_lines.add(tok.start[0])
        # A standalone suppression comment governs the next line as well, so
        # long statements need not grow a trailing comment past line length.
        for line in standalone:
            self._by_line.setdefault(line + 1, set()).update(self._by_line[line])
        self._code_lines = code_lines

    def is_suppressed(self, line: int, code: str) -> bool:
        codes = self._by_line.get(line)
        if not codes:
            return False
        return code.upper() in codes or "ALL" in codes
