"""``# repro-lint:`` control comments: suppressions and boundary markers.

Suppression syntax (trailing on the reported line, or alone on the line
directly above)::

    self._t0 = time.perf_counter()  # repro-lint: disable=DET002 -- stats timer
    # repro-lint: disable=DET003 -- consumer sorts downstream
    for v in vertex_set:
        ...

Several codes may be given comma-separated, and ``disable=all`` silences
every rule for that line. The text after ``--`` is a free-form reason; the
project convention (enforced in review, not by the tool) is that every
shipped suppression carries one.

Boundary syntax, placed on (or directly above) a ``def`` line, declares the
function a *sanctioned boundary* for the whole-program analyses::

    # repro-lint: boundary=DET010 -- seeds all downstream randomness
    def ensure_rng(seed):
        ...

``boundary=FLOW001`` (or ``FLOW002``) marks a sanctioned sanitizer: taint
does not propagate through calls to the function. ``boundary=DET010`` stops
nondeterminism propagation at the function. Boundary markers complement the
defaults declared in :class:`repro.lint.engine.LintConfig`.

Comments are located with :mod:`tokenize`, so the marker inside a string
literal is never mistaken for a control comment.

Usage accounting: every :meth:`Suppressions.is_suppressed` hit records which
``(comment line, code)`` pair did the suppressing. After all rules (file and
whole-program) have reported, :meth:`Suppressions.useless` lists the pairs
that never fired — the input to the SUP001 "useless suppression" findings.
The tables round-trip through :meth:`to_payload`/:meth:`from_payload` so the
summary cache can restore them (including the file-pass usage) without
re-tokenizing the source.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Any

_PATTERN = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<codes>[A-Za-z0-9_,\s]+?)\s*(?:--\s*(?P<reason>.*))?$"
)

_BOUNDARY_PATTERN = re.compile(
    r"#\s*repro-lint:\s*boundary=(?P<codes>[A-Za-z0-9_,\s]+?)\s*(?:--\s*(?P<reason>.*))?$"
)


def _split_codes(raw: str) -> tuple[str, ...]:
    return tuple(sorted({c.strip().upper() for c in raw.split(",") if c.strip()}))


@dataclass(frozen=True)
class SuppressionEntry:
    """One ``disable=`` comment: where it sits and what it names."""

    line: int
    codes: tuple[str, ...]
    standalone: bool


class Suppressions:
    """The suppression and boundary tables of one source file."""

    def __init__(self, source: str | None = None) -> None:
        #: every ``disable=`` comment, in line order
        self.entries: list[SuppressionEntry] = []
        #: comment line -> boundary codes declared there (covers line and +1)
        self._boundaries: dict[int, tuple[str, ...]] = {}
        #: governed line -> entry indices whose codes apply to it
        self._cover: dict[int, list[int]] = {}
        #: (comment line, code-as-written) pairs that suppressed a finding
        self._used: set[tuple[int, str]] = set()
        if source is not None:
            self._parse(source)

    def _parse(self, source: str) -> None:
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, SyntaxError, IndentationError):
            return
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            standalone = tok.line.strip().startswith("#")
            line = tok.start[0]
            match = _PATTERN.search(tok.string)
            if match is not None:
                self._add_entry(SuppressionEntry(
                    line=line, codes=_split_codes(match.group("codes")),
                    standalone=standalone))
                continue
            bmatch = _BOUNDARY_PATTERN.search(tok.string)
            if bmatch is not None:
                codes = _split_codes(bmatch.group("codes"))
                existing = self._boundaries.get(line, ())
                self._boundaries[line] = tuple(sorted({*existing, *codes}))

    def _add_entry(self, entry: SuppressionEntry) -> None:
        index = len(self.entries)
        self.entries.append(entry)
        self._cover.setdefault(entry.line, []).append(index)
        if entry.standalone:
            # A standalone comment governs the next line as well, so long
            # statements need not grow a trailing comment past line length.
            self._cover.setdefault(entry.line + 1, []).append(index)

    # -- queries ---------------------------------------------------------

    def is_suppressed(self, line: int, code: str) -> bool:
        """Whether *code* is disabled on *line* (records usage on a hit)."""
        hit = False
        code = code.upper()
        for index in self._cover.get(line, ()):
            entry = self.entries[index]
            if code in entry.codes:
                self._used.add((entry.line, code))
                hit = True
            elif "ALL" in entry.codes:
                self._used.add((entry.line, "ALL"))
                hit = True
        return hit

    def boundary_codes(self, line: int) -> tuple[str, ...]:
        """Boundary codes declared on *line* or standalone directly above."""
        out = set(self._boundaries.get(line, ()))
        out.update(self._boundaries.get(line - 1, ()))
        return tuple(sorted(out))

    def useless(self) -> list[tuple[int, str]]:
        """``(comment line, code)`` pairs that never suppressed anything."""
        out: list[tuple[int, str]] = []
        for entry in self.entries:
            for code in entry.codes:
                if (entry.line, code) not in self._used:
                    out.append((entry.line, code))
        return sorted(set(out))

    # -- cache round-trip ------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        return {
            "boundaries": [[line, list(codes)]
                           for line, codes in sorted(self._boundaries.items())],
            "entries": [[e.line, list(e.codes), e.standalone]
                        for e in self.entries],
            "used": sorted([line, code] for line, code in self._used),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "Suppressions":
        out = cls()
        for line, codes, standalone in payload["entries"]:
            out._add_entry(SuppressionEntry(
                line=int(line), codes=tuple(codes), standalone=bool(standalone)))
        for line, codes in payload["boundaries"]:
            out._boundaries[int(line)] = tuple(codes)
        out._used.update((int(line), str(code)) for line, code in payload["used"])
        return out
