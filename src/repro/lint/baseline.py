"""Baseline files: grandfather existing findings, gate everything new.

A baseline is a committed JSON file of finding *fingerprints*. A fingerprint
is derived from ``(path, rule code, stripped source line text, occurrence
index)`` — deliberately **not** from the line number, so unrelated edits that
shift a grandfathered finding up or down the file do not invalidate its
baseline entry. The occurrence index disambiguates identical violations on
textually identical lines within one file.

Workflow: ``python -m repro.lint src/ --write-baseline lint-baseline.json``
records the status quo; CI then runs with ``--baseline lint-baseline.json``
and fails only on findings that are not in the file. Shrink the baseline over
time by fixing findings and re-writing it; it never grows silently (a stale
entry is harmless, a new finding is an error).
"""

from __future__ import annotations

import hashlib
import json

from repro.lint.findings import Finding
from repro.utils.validation import ReproError


def fingerprint_findings(findings: list[Finding]) -> list[Finding]:
    """Assign stable fingerprints; returns a new, report-ordered list."""
    ordered = sorted(findings)
    occurrence: dict[tuple[str, str, str], int] = {}
    out: list[Finding] = []
    for f in ordered:
        key = (f.path, f.code, f.line_text)
        index = occurrence.get(key, 0)
        occurrence[key] = index + 1
        digest = hashlib.sha256(
            f"{f.path}|{f.code}|{f.line_text}|{index}".encode("utf-8")
        ).hexdigest()[:16]
        out.append(
            Finding(
                path=f.path, line=f.line, col=f.col, code=f.code,
                message=f.message, line_text=f.line_text, fingerprint=digest,
            )
        )
    return out


def load_baseline_entries(path: str) -> list[dict[str, str]]:
    """The full entry list of a baseline file (raises ReproError on damage)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ReproError(f"cannot read baseline {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"baseline {path!r} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ReproError(f"baseline {path!r} lacks a 'findings' list")
    entries: list[dict[str, str]] = []
    for entry in payload["findings"]:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise ReproError(f"baseline {path!r} has a malformed entry: {entry!r}")
        entries.append({str(k): str(v) for k, v in entry.items()})
    return entries


def load_baseline(path: str) -> set[str]:
    """The fingerprint set of a baseline file (raises ReproError on damage)."""
    return {entry["fingerprint"] for entry in load_baseline_entries(path)}


def write_baseline_entries(path: str, entries: list[dict[str, str]]) -> None:
    """Write raw entries as a canonical baseline file (used by pruning)."""
    ordered = sorted(
        entries,
        key=lambda e: (e.get("fingerprint", ""), e.get("path", ""), e.get("code", "")),
    )
    payload = {"findings": ordered, "tool": "repro.lint", "version": 1}
    try:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, sort_keys=True, indent=2) + "\n")
    except OSError as exc:
        raise ReproError(f"cannot write baseline {path!r}: {exc}") from exc


def write_baseline(path: str, findings: list[Finding]) -> None:
    """Write a canonical (sorted, byte-deterministic) baseline file."""
    write_baseline_entries(path, [
        {"code": f.code, "fingerprint": f.fingerprint, "path": f.path}
        for f in sorted(findings)
    ])
