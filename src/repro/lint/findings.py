"""Finding records and the deterministic text/JSON renderers.

Everything a finding carries is a pure function of the linted source text and
the (posix, relative) path it was reached under — no absolute paths, no
timestamps, no object identities — so a report is byte-identical across
machines, runs, and directory-traversal orders.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Orders by ``(path, line, col, code, message)`` so a sorted list of
    findings is the canonical report order.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    #: the stripped source line, used for line-number-independent fingerprints
    line_text: str = field(default="", compare=False)
    #: stable identity for baselines; assigned by ``fingerprint_findings``
    fingerprint: str = field(default="", compare=False)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


def render_text(findings: list[Finding]) -> str:
    """One ``path:line:col: CODE message`` line per finding, report order."""
    return "".join(
        f"{f.location()}: {f.code} {f.message}\n" for f in sorted(findings)
    )


def render_json(findings: list[Finding], baselined: int = 0) -> str:
    """Canonical JSON report: sorted findings, sorted keys, fixed separators.

    The rendering is byte-deterministic: two runs over the same tree produce
    identical bytes whatever order the files were visited in.
    """
    payload = {
        "baselined": baselined,
        "counts": _counts(findings),
        "findings": [
            {
                "code": f.code,
                "col": f.col,
                "fingerprint": f.fingerprint,
                "line": f.line,
                "message": f.message,
                "path": f.path,
            }
            for f in sorted(findings)
        ],
        "tool": "repro.lint",
        "version": 1,
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True) + "\n"


def _counts(findings: list[Finding]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.code] = counts.get(f.code, 0) + 1
    return dict(sorted(counts.items()))
