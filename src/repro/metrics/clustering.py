"""Clustering coefficients / transitivity (the third panel of Figure 8).

All four entry points run off the graph's cached CSR view
(:mod:`repro.graphs.csr`): the per-vertex triangle counts come from one
sorted-adjacency merge pass shared across calls, and the coefficient
division is done vectorised with the same IEEE-754 operations as the scalar
reference in :mod:`repro.graphs.reference`, so every float is bit-identical
to the seed implementation.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph


def local_clustering(graph: Graph, v) -> float:
    """Fraction of connected neighbour pairs of v; 0.0 below degree 2."""
    degree = graph.degree(v)
    if degree < 2:
        return 0.0
    possible = degree * (degree - 1) / 2
    return graph.triangles_at(v) / possible


def clustering_values(graph: Graph) -> list[float]:
    """One local clustering coefficient per vertex, ascending."""
    return np.sort(graph.csr().clustering_coefficients()).tolist()


def clustering_histogram(graph: Graph, bins: int = 20) -> list[int]:
    """Histogram of local coefficients over [0, 1] in *bins* equal bins.

    The value 1.0 falls in the last bin. Binned straight from the unsorted
    per-vertex coefficients — the histogram never needed the sort that
    ``clustering_values`` performs.
    """
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    coeffs = graph.csr().clustering_coefficients()
    index = np.minimum((coeffs * bins).astype(np.int64), bins - 1)
    return np.bincount(index, minlength=bins).tolist()


def global_transitivity(graph: Graph) -> float:
    """3 * triangles / connected triples (0.0 for triple-free graphs)."""
    csr = graph.csr()
    degrees = csr.degrees
    triples = int(np.sum(degrees * (degrees - 1) // 2))
    if triples == 0:
        return 0.0
    # Each triangle is counted once per corner by the triangle kernel.
    closed = int(csr.triangle_counts().sum())
    return closed / triples
