"""Clustering coefficients / transitivity (the third panel of Figure 8)."""

from __future__ import annotations

from repro.graphs.graph import Graph


def local_clustering(graph: Graph, v) -> float:
    """Fraction of connected neighbour pairs of v; 0.0 below degree 2."""
    degree = graph.degree(v)
    if degree < 2:
        return 0.0
    possible = degree * (degree - 1) / 2
    return graph.triangles_at(v) / possible


def clustering_values(graph: Graph) -> list[float]:
    """One local clustering coefficient per vertex, ascending."""
    return sorted(local_clustering(graph, v) for v in graph.vertices())


def clustering_histogram(graph: Graph, bins: int = 20) -> list[int]:
    """Histogram of local coefficients over [0, 1] in *bins* equal bins.

    The value 1.0 falls in the last bin.
    """
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    hist = [0] * bins
    for value in clustering_values(graph):
        index = min(int(value * bins), bins - 1)
        hist[index] += 1
    return hist


def global_transitivity(graph: Graph) -> float:
    """3 * triangles / connected triples (0.0 for triple-free graphs)."""
    closed = 0
    triples = 0
    for v in graph.vertices():
        degree = graph.degree(v)
        triples += degree * (degree - 1) // 2
        closed += graph.triangles_at(v)
    if triples == 0:
        return 0.0
    # Each triangle is counted once per corner by triangles_at.
    return closed / triples
