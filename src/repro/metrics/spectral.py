"""Spectral utility: adjacency eigenvalues of original vs samples.

An extension beyond the paper's four properties, motivated by its Related
Work: Ying & Wu (2007) judge anonymization quality by how well the graph
*spectrum* survives. Since backbone-based samples are supposed to be
structural stand-ins for the original, their top adjacency eigenvalues
should track it too; this module measures that.

Uses numpy's symmetric eigensolver; fine for the laptop-scale graphs of this
reproduction (dense O(n^3); keep n in the low thousands).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.validation import check_positive_int


def adjacency_spectrum(graph: Graph, top: int | None = None) -> list[float]:
    """Eigenvalues of the adjacency matrix, descending; optionally the top k.

    The empty graph has an empty spectrum.
    """
    n = graph.n
    if n == 0:
        return []
    vertices = graph.sorted_vertices()
    index = {v: i for i, v in enumerate(vertices)}
    matrix = np.zeros((n, n))
    for u, v in graph.edges():
        matrix[index[u], index[v]] = 1.0
        matrix[index[v], index[u]] = 1.0
    eigenvalues = np.linalg.eigvalsh(matrix)[::-1]
    if top is not None:
        check_positive_int(top, "top")
        eigenvalues = eigenvalues[:top]
    return [float(x) for x in eigenvalues]


def spectral_distance(a: Graph, b: Graph, top: int = 10) -> float:
    """Normalised l2 distance between the top-*top* adjacency eigenvalues.

    Shorter spectra are zero-padded (the natural continuation for graphs of
    different sizes); the result is divided by sqrt(top) so it is comparable
    across choices of *top*.
    """
    check_positive_int(top, "top")
    sa = adjacency_spectrum(a, top=top)
    sb = adjacency_spectrum(b, top=top)
    sa += [0.0] * (top - len(sa))
    sb += [0.0] * (top - len(sb))
    return float(np.linalg.norm(np.array(sa) - np.array(sb)) / np.sqrt(top))


def mean_spectral_distance(original: Graph, samples: list[Graph], top: int = 10) -> float:
    """Average spectral distance from *original* over the sample set."""
    if not samples:
        raise ValueError("no sample graphs supplied")
    return sum(spectral_distance(original, s, top=top) for s in samples) / len(samples)
