"""Two-sample Kolmogorov–Smirnov statistic.

The paper aggregates sample quality as "the average of the value
Kolmogorov-Smirnov statistic (which measures the maximum vertical distance
between two cumulative distributions)". Implemented directly on sorted
samples; the test suite cross-checks against ``scipy.stats.ks_2samp``.
"""

from __future__ import annotations

from collections.abc import Sequence


def ks_statistic(sample_a: Sequence[float], sample_b: Sequence[float]) -> float:
    """sup_x |ECDF_a(x) - ECDF_b(x)| for two non-empty samples.

    One empty sample against a non-empty one is maximally distant (1.0);
    two empty samples are identical (0.0).
    """
    a = sorted(sample_a)
    b = sorted(sample_b)
    if not a and not b:
        return 0.0
    if not a or not b:
        return 1.0
    na, nb = len(a), len(b)
    ia = ib = 0
    best = 0.0
    while ia < na and ib < nb:
        if a[ia] <= b[ib]:
            x = a[ia]
        else:
            x = b[ib]
        while ia < na and a[ia] <= x:
            ia += 1
        while ib < nb and b[ib] <= x:
            ib += 1
        best = max(best, abs(ia / na - ib / nb))
    return max(best, abs(1.0 - ib / nb), abs(ia / na - 1.0))
