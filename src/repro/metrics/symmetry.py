"""Symmetry content of a network (the [8]/[15]/[17] literature's measures).

The paper stands on a line of work measuring how symmetric real networks
are (MacArthur et al.; Xiao et al.). This module computes those descriptive
statistics for any graph:

* orbit structure — orbit count, the fraction of vertices with at least one
  automorphically equivalent counterpart, the largest orbit;
* backbone compression — how much of the graph is redundant copies
  (1 - |backbone| / n), the quantity that makes backbone-based sampling
  informative;
* group magnitude — log10 |Aut(G)|. Exact (Schreier–Sims) when few enough
  points move; otherwise a guaranteed *lower bound* assembled from subgroups
  with disjoint supports: the pendant-forest automorphisms (product over
  vertices of the factorials of equal-code child multiplicities — the exact
  rooted-forest formula) times the twin-cell symmetric groups of the 2-core.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.graphs.graph import Graph
from repro.graphs.partition import Partition
from repro.isomorphism.orbits import automorphism_partition
from repro.isomorphism.pendant import decompose_pendant_forest
from repro.isomorphism.refinement import OrderedPartition
from repro.isomorphism.search import collapse_twin_cells

_EXACT_ORDER_MOVED_LIMIT = 120


@dataclass
class SymmetryReport:
    """Descriptive symmetry statistics of one graph."""

    n_vertices: int
    n_orbits: int
    nontrivial_orbits: int
    largest_orbit: int
    #: fraction of vertices having at least one equivalent counterpart
    symmetric_fraction: float
    #: 1 - |backbone| / n: how much of the graph is redundant copies
    backbone_compression: float
    #: log10 of |Aut(G)| (exact) or of a subgroup (lower bound)
    log10_group_order: float
    group_order_exact: bool

    @property
    def anonymity_floor(self) -> int:
        """The k the graph already provides with no modification."""
        return 0 if self.n_vertices == 0 else self.largest_smallest_orbit

    largest_smallest_orbit: int = 1


def _log10_factorial(n: int) -> float:
    return math.lgamma(n + 1) / math.log(10)


def _pendant_log10_order(graph: Graph) -> float:
    """log10 of the (exact) core-fixing pendant automorphism group."""
    decomp = decompose_pendant_forest(graph)
    total = 0.0
    for kids in decomp.children.values():
        if len(kids) < 2:
            continue
        run = 1
        for left, right in zip(kids, kids[1:]):
            if decomp.code[left] == decomp.code[right]:
                run += 1
            else:
                total += _log10_factorial(run)
                run = 1
        total += _log10_factorial(run)
    return total


def _core_twin_log10_order(graph: Graph) -> float:
    """log10 of the 2-core's twin-cell symmetric groups (disjoint supports
    from the pendant group, so the contributions multiply)."""
    decomp = decompose_pendant_forest(graph)
    core = decomp.core_vertices
    if not core:
        return 0.0
    core_graph = graph.subgraph(core)
    coloring = Partition.from_coloring(decomp.core_coloring())
    op = OrderedPartition.from_partition(coloring)
    op.refine(core_graph)
    total = 0.0
    before = {start: op.cell_len[start] for start in op.nonsingleton}
    collapse_twin_cells(core_graph, op)
    for start, size in before.items():
        # a collapsed cell became singletons; its full symmetric group acts
        if op.cell_len.get(start) == 1 and size > 1:
            total += _log10_factorial(size)
    return total


def symmetry_report(graph: Graph) -> SymmetryReport:
    """Compute the full symmetry profile of *graph*."""
    if graph.n == 0:
        return SymmetryReport(0, 0, 0, 0, 0.0, 0.0, 0.0, True, 0)

    result = automorphism_partition(graph)
    orbits = result.orbits
    nontrivial = [cell for cell in orbits.cells if len(cell) > 1]
    symmetric_vertices = sum(len(cell) for cell in nontrivial)

    from repro.core.backbone import backbone

    compression = 1.0 - backbone(graph, orbits).graph.n / graph.n

    moved = set()
    for gen in result.generators:
        moved |= gen.support()
    if len(moved) <= _EXACT_ORDER_MOVED_LIMIT:
        from repro.isomorphism.permgroup import PermutationGroup

        order = PermutationGroup(result.generators).order()
        log10_order = math.log10(order) if order > 1 else 0.0
        exact = True
    else:
        log10_order = _pendant_log10_order(graph) + _core_twin_log10_order(graph)
        exact = False

    return SymmetryReport(
        n_vertices=graph.n,
        n_orbits=len(orbits),
        nontrivial_orbits=len(nontrivial),
        largest_orbit=max((len(c) for c in orbits.cells), default=0),
        symmetric_fraction=symmetric_vertices / graph.n,
        backbone_compression=compression,
        log10_group_order=log10_order,
        group_order_exact=exact,
        largest_smallest_orbit=orbits.min_cell_size(),
    )
