"""Utility metrics the paper evaluates on sampled graphs (Section 4.3).

Degree distribution, shortest-path-length distribution over sampled vertex
pairs, clustering-coefficient (transitivity) distribution, network resilience
under targeted hub removal, the two-sample Kolmogorov–Smirnov statistic, and
aggregation of all of these across a set of sample graphs.
"""

from repro.metrics.degrees import degree_values, degree_histogram
from repro.metrics.paths import path_length_values, path_length_histogram
from repro.metrics.clustering import (
    local_clustering,
    clustering_values,
    clustering_histogram,
    global_transitivity,
)
from repro.metrics.resilience import resilience_curve
from repro.metrics.ks import ks_statistic
from repro.metrics.symmetry import symmetry_report, SymmetryReport
from repro.metrics.spectral import (
    adjacency_spectrum,
    spectral_distance,
    mean_spectral_distance,
)
from repro.metrics.aggregate import (
    mean_ks_against,
    average_histogram,
    average_curve,
    UtilityComparison,
    compare_utility,
)

__all__ = [
    "degree_values",
    "degree_histogram",
    "path_length_values",
    "path_length_histogram",
    "local_clustering",
    "clustering_values",
    "clustering_histogram",
    "global_transitivity",
    "resilience_curve",
    "ks_statistic",
    "symmetry_report",
    "SymmetryReport",
    "adjacency_spectrum",
    "spectral_distance",
    "mean_spectral_distance",
    "mean_ks_against",
    "average_histogram",
    "average_curve",
    "UtilityComparison",
    "compare_utility",
]
