"""Utility metrics the paper evaluates on sampled graphs (Section 4.3).

Degree distribution, shortest-path-length distribution over sampled vertex
pairs, clustering-coefficient (transitivity) distribution, network resilience
under targeted hub removal, the two-sample Kolmogorov–Smirnov statistic, and
aggregation of all of these across a set of sample graphs.
"""

from repro.metrics.aggregate import (
    UtilityComparison,
    average_curve,
    average_histogram,
    compare_utility,
    mean_ks_against,
)
from repro.metrics.clustering import (
    clustering_histogram,
    clustering_values,
    global_transitivity,
    local_clustering,
)
from repro.metrics.degrees import degree_histogram, degree_values
from repro.metrics.ks import ks_statistic
from repro.metrics.paths import path_length_histogram, path_length_values
from repro.metrics.resilience import resilience_curve
from repro.metrics.spectral import (
    adjacency_spectrum,
    mean_spectral_distance,
    spectral_distance,
)
from repro.metrics.symmetry import SymmetryReport, symmetry_report

__all__ = [
    "degree_values",
    "degree_histogram",
    "path_length_values",
    "path_length_histogram",
    "local_clustering",
    "clustering_values",
    "clustering_histogram",
    "global_transitivity",
    "resilience_curve",
    "ks_statistic",
    "symmetry_report",
    "SymmetryReport",
    "adjacency_spectrum",
    "spectral_distance",
    "mean_spectral_distance",
    "mean_ks_against",
    "average_histogram",
    "average_curve",
    "UtilityComparison",
    "compare_utility",
]
