"""Network resilience under targeted hub removal (the fourth panel of Figure 8).

Following Albert, Jeong & Barabási (Nature 2000), vertices are removed in
descending order of (original) degree and the fraction of vertices remaining
in the largest connected component is tracked against the fraction removed.

Computed backwards for efficiency: start from the empty graph, re-insert
vertices in *ascending* degree order maintaining components with union-find,
and reverse the record — one pass, O((n + m) α(n)) instead of n LCC
recomputations.
"""

from __future__ import annotations

from repro.graphs.graph import Graph
from repro.utils.unionfind import UnionFind


def resilience_curve(graph: Graph, steps: int = 50) -> tuple[list[float], list[float]]:
    """Largest-component fraction vs fraction of hubs removed.

    Returns ``(fractions_removed, lcc_fractions)`` with *steps* + 1 points
    covering removal fractions 0..1. The y-values are normalised by the
    original vertex count. Ties in degree are broken by vertex label for
    determinism.
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    n = graph.n
    if n == 0:
        return ([i / steps for i in range(steps + 1)], [0.0] * (steps + 1))

    removal_order = sorted(graph.vertices(), key=lambda v: (-graph.degree(v), repr(v)))
    # lcc_after_removing[r] = LCC size once the first r vertices are gone.
    lcc_after_removing = [0] * (n + 1)
    uf = UnionFind()
    present: set = set()
    largest = 0
    # Insert back from the last-removed vertex to the first.
    for r in range(n - 1, -1, -1):
        v = removal_order[r]
        uf.add(v)
        present.add(v)
        for u in graph.neighbors(v):
            if u in present:
                uf.union(u, v)
        largest = max(largest, uf.set_size(v))
        lcc_after_removing[r] = largest

    fractions = [i / steps for i in range(steps + 1)]
    curve = []
    for fraction in fractions:
        removed = min(n, round(fraction * n))
        curve.append(lcc_after_removing[removed] / n)
    return fractions, curve
