"""Shortest-path-length distribution over sampled vertex pairs.

The paper measures "the lengths of the shortest paths between 500 randomly
sampled pairs of vertices". Pairs falling in different components have no
path; they are dropped from the distribution (and callers can learn how
often that happened from the returned count being below the request).
Sampling is grouped by source vertex so one BFS serves all pairs sharing a
source.
"""

from __future__ import annotations

from repro.graphs.graph import Graph
from repro.utils.rng import RandomLike, ensure_rng
from repro.utils.validation import check_positive_int


def path_length_values(
    graph: Graph, n_pairs: int = 500, rng: RandomLike = None, n_sources: int | None = None
) -> list[int]:
    """Shortest-path lengths of up to *n_pairs* random distinct-vertex pairs.

    Returns the achieved (finite) lengths, ascending; disconnected pairs are
    skipped. An empty or single-vertex graph yields an empty list.

    With the default ``n_sources=None`` every pair is drawn independently
    (the paper's formulation, one BFS per distinct source). Setting
    *n_sources* restricts the pairs to that many shared source vertices —
    the experiment harness uses this to bound the BFS count when measuring
    hundreds of sample graphs; the distribution is statistically equivalent
    for the KS comparisons it feeds.
    """
    check_positive_int(n_pairs, "n_pairs")
    if graph.n < 2:
        return []
    rand = ensure_rng(rng)
    vertices = graph.sorted_vertices()
    pairs_by_source: dict[object, list[object]] = {}
    if n_sources is not None:
        check_positive_int(n_sources, "n_sources")
        sources = [rand.choice(vertices) for _ in range(min(n_sources, n_pairs))]
        for i in range(n_pairs):
            u = sources[i % len(sources)]
            v = rand.choice(vertices)
            while v == u:
                v = rand.choice(vertices)
            pairs_by_source.setdefault(u, []).append(v)
    else:
        for _ in range(n_pairs):
            u = rand.choice(vertices)
            v = rand.choice(vertices)
            while v == u:
                v = rand.choice(vertices)
            pairs_by_source.setdefault(u, []).append(v)
    lengths: list[int] = []
    for source, targets in pairs_by_source.items():
        dist = graph.bfs_distances(source)
        for t in targets:
            if t in dist:
                lengths.append(dist[t])
    lengths.sort()
    return lengths


def path_length_histogram(graph: Graph, n_pairs: int = 500, rng: RandomLike = None,
                          max_length: int | None = None) -> list[int]:
    """``hist[L]`` = sampled pairs at distance L (see :func:`path_length_values`)."""
    values = path_length_values(graph, n_pairs=n_pairs, rng=rng)
    top = max(values, default=0)
    if max_length is None:
        max_length = top
    elif top > max_length:
        raise ValueError(f"observed length {top} above requested bound {max_length}")
    hist = [0] * (max_length + 1)
    for length in values:
        hist[length] += 1
    return hist
