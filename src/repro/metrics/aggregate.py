"""Aggregating utility measurements across sample graphs (Sections 4.3, 5.2).

The paper's analyst draws a set of sample graphs, measures each, and
aggregates: averaged distributions for the Figure 8 panels, averaged KS
statistics for the Figure 9 convergence curves and the Figure 11 hub-
exclusion comparison. This module hosts that aggregation logic.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.graphs.graph import Graph
from repro.metrics.clustering import clustering_values
from repro.metrics.degrees import degree_values
from repro.metrics.ks import ks_statistic
from repro.metrics.paths import path_length_values
from repro.metrics.resilience import resilience_curve
from repro.utils.rng import RandomLike, ensure_rng


def mean_ks_against(
    original_values: Sequence[float], sample_values: Sequence[Sequence[float]]
) -> float:
    """Average KS distance between the original's sample and each graph's sample."""
    if not sample_values:
        raise ValueError("no sample value lists supplied")
    total = sum(ks_statistic(original_values, values) for values in sample_values)
    return total / len(sample_values)


def average_histogram(histograms: Sequence[Sequence[float]]) -> list[float]:
    """Position-wise mean of histograms (shorter ones are zero-padded)."""
    if not histograms:
        raise ValueError("no histograms supplied")
    width = max(len(h) for h in histograms)
    out = [0.0] * width
    for hist in histograms:
        for i, value in enumerate(hist):
            out[i] += value
    return [value / len(histograms) for value in out]


def average_curve(curves: Sequence[Sequence[float]]) -> list[float]:
    """Position-wise mean of equal-length curves."""
    if not curves:
        raise ValueError("no curves supplied")
    length = len(curves[0])
    if any(len(c) != length for c in curves):
        raise ValueError("curves must share one length")
    return [sum(c[i] for c in curves) / len(curves) for i in range(length)]


@dataclass
class UtilityComparison:
    """Original-vs-samples comparison across the paper's four properties.

    ``*_ks`` fields hold the average KS statistic of that property across
    the samples (lower is better); ``resilience_gap`` is the mean maximum
    vertical distance between resilience curves (a KS-style statistic for a
    curve rather than a sample).
    """

    n_samples: int
    degree_ks: float
    path_ks: float
    clustering_ks: float
    resilience_gap: float
    original_degree: list[int] = field(default_factory=list, repr=False)
    original_paths: list[int] = field(default_factory=list, repr=False)
    original_clustering: list[float] = field(default_factory=list, repr=False)
    original_resilience: list[float] = field(default_factory=list, repr=False)
    sample_mean_degree_hist: list[float] = field(default_factory=list, repr=False)
    sample_mean_resilience: list[float] = field(default_factory=list, repr=False)


def compare_utility(
    original: Graph,
    samples: Sequence[Graph],
    n_pairs: int = 500,
    resilience_steps: int = 50,
    rng: RandomLike = None,
    path_sources: int | None = None,
) -> UtilityComparison:
    """Measure the four Figure 8 properties on everything and aggregate.

    All path-length measurements share one RNG so the pair budgets are
    comparable; pass a seeded value for reproducible experiment output.
    """
    if not samples:
        raise ValueError("no sample graphs supplied")
    rand = ensure_rng(rng)

    orig_degree = degree_values(original)
    orig_paths = path_length_values(original, n_pairs=n_pairs, rng=rand, n_sources=path_sources)
    orig_clustering = clustering_values(original)
    _, orig_resilience = resilience_curve(original, steps=resilience_steps)

    degree_ks_total = path_ks_total = clustering_ks_total = resilience_total = 0.0
    from repro.metrics.degrees import degree_histogram

    degree_hists = []
    resilience_curves = []
    for sample in samples:
        s_degree = degree_values(sample)
        s_paths = path_length_values(sample, n_pairs=n_pairs, rng=rand, n_sources=path_sources)
        s_clustering = clustering_values(sample)
        _, s_resilience = resilience_curve(sample, steps=resilience_steps)
        degree_ks_total += ks_statistic(orig_degree, s_degree)
        path_ks_total += ks_statistic(orig_paths, s_paths)
        clustering_ks_total += ks_statistic(orig_clustering, s_clustering)
        resilience_total += max(
            abs(a - b) for a, b in zip(orig_resilience, s_resilience)
        )
        degree_hists.append(degree_histogram(sample))
        resilience_curves.append(s_resilience)

    count = len(samples)
    return UtilityComparison(
        n_samples=count,
        degree_ks=degree_ks_total / count,
        path_ks=path_ks_total / count,
        clustering_ks=clustering_ks_total / count,
        resilience_gap=resilience_total / count,
        original_degree=orig_degree,
        original_paths=orig_paths,
        original_clustering=orig_clustering,
        original_resilience=orig_resilience,
        sample_mean_degree_hist=average_histogram(degree_hists),
        sample_mean_resilience=average_curve(resilience_curves),
    )
