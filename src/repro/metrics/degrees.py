"""Degree distribution (the first panel of the paper's Figure 8)."""

from __future__ import annotations

from repro.graphs.graph import Graph


def degree_values(graph: Graph) -> list[int]:
    """One degree per vertex, ascending — the raw sample for KS comparisons."""
    return sorted(graph.degree(v) for v in graph.vertices())


def degree_histogram(graph: Graph, max_degree: int | None = None) -> list[int]:
    """``hist[d]`` = number of vertices of degree d, for d = 0..max.

    *max_degree* pads (or truncates is never needed — degrees above it raise)
    so histograms of different graphs can be compared index by index.
    """
    top = graph.max_degree()
    if max_degree is None:
        max_degree = top
    elif top > max_degree:
        raise ValueError(f"graph has degree {top} above requested bound {max_degree}")
    hist = [0] * (max_degree + 1)
    for v in graph.vertices():
        hist[graph.degree(v)] += 1
    return hist
