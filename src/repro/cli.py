"""Command-line interface: ``ksymmetry <command>``.

Commands
--------
anonymize   read an edge list, publish a k-symmetric (or hub-excluding)
            version: writes ``<out>.edges``, ``<out>.partition`` and
            ``<out>.meta`` (the triple the paper's publisher releases)
republish   grow a previous publication by an insertions-only delta and
            re-anonymize incrementally (sequential-release safe: previous
            cells carry over verbatim, so composing the two releases still
            guarantees k)
sample      read a publication produced by ``anonymize`` and draw sample
            graphs for analysis
stats       Table 1-style statistics (plus orbit structure) of an edge list
attack      run a re-identification attack against an edge list; ``--model``
            selects the adversary (hierarchy measures, (k,l)-adjacency or
            multiset sweeps, active sybil planting, two-release composition)
experiment  run one of the paper's experiments (table1, figure2, figure8,
            figure9, figure10, figure11, all)
lint        run the repository's determinism & invariant linter, including
            the whole-program privacy-taint / determinism / async-hazard
            analysis (alias of ``python -m repro.lint``; exits 0 clean,
            1 findings, 2 usage error)
serve       run ksymmetryd, the anonymization-as-a-service daemon (publish /
            sample / attack-audit over HTTP with batching, caching, and
            per-tenant reproducibility; see docs/service.md)
"""

from __future__ import annotations

import argparse
import sys

from repro.attacks.adjacency import kl_anonymity_report, kl_candidate_set
from repro.attacks.knowledge import MEASURES
from repro.attacks.reidentify import simulate_attack
from repro.attacks.sequential import sequential_attack
from repro.attacks.sybil import sybil_attack
from repro.core.anonymize import anonymize
from repro.core.fsymmetry import anonymize_f, hub_exclusion_by_fraction
from repro.core.publication import load_publication, save_publication
from repro.core.sampling import sample_many
from repro.datasets.synthetic import dataset_statistics
from repro.graphs.graph import Graph
from repro.graphs.io import read_edge_list, write_edge_list
from repro.isomorphism.canonical import certificate_digest
from repro.isomorphism.orbits import automorphism_partition
from repro.utils.validation import ReproError


def _read_graph(path: str) -> Graph:
    return read_edge_list(path)


def cmd_anonymize(args: argparse.Namespace) -> int:
    graph = _read_graph(args.input)
    if args.exclude_hubs > 0:
        requirement = hub_exclusion_by_fraction(args.k, graph, args.exclude_hubs)
        result = anonymize_f(graph, requirement, method=args.method, copy_unit=args.copy_unit)
    else:
        result = anonymize(graph, args.k, method=args.method, copy_unit=args.copy_unit)
    save_publication(result, args.out)
    print(f"published {args.out}.edges / .partition / .meta")
    print(f"  vertices: {result.original_graph.n} -> {result.graph.n} (+{result.vertices_added})")
    print(f"  edges:    {result.original_graph.m} -> {result.graph.m} (+{result.edges_added})")
    return 0


def cmd_republish(args: argparse.Namespace) -> int:
    from repro.core.publication import save_publication_triple
    from repro.core.republish import read_delta, republish_published

    graph, partition, original_n = load_publication(args.publication)
    delta = read_delta(args.delta)
    result = republish_published(
        graph, partition, original_n, delta, args.k,
        method=args.method, copy_unit=args.copy_unit, engine=args.engine)
    save_publication_triple(
        *result.published(), args.out,
        extra={
            "k": result.k,
            "copy_unit": result.copy_unit,
            "engine": result.engine,
            "closure_edges": result.closure_edges,
            "delta_vertices": delta.n_vertices,
            "delta_edges": delta.n_edges,
            "vertices_added": result.vertices_added,
            "edges_added": result.edges_added,
        })
    print(f"republished {args.out}.edges / .partition / .meta")
    print(f"  delta:    +{delta.n_vertices}v +{delta.n_edges}e "
          f"(+{result.closure_edges} closure edges)")
    print(f"  vertices: {result.previous_graph.n} -> {result.graph.n} "
          f"(+{result.vertices_added} copies)")
    print(f"  edges:    {result.previous_graph.m} -> {result.graph.m}")
    print(f"  cells:    {len(result.previous_partition)} -> "
          f"{len(result.partition)} (previous cells carried verbatim)")
    return 0


def cmd_sample(args: argparse.Namespace) -> int:
    graph, partition, original_n = load_publication(args.publication)
    run_stats: list = []
    samples = sample_many(
        graph, partition, original_n, args.count,
        strategy=args.strategy, rng=args.seed, jobs=args.jobs,
        stats=run_stats,
    )
    for i, sample in enumerate(samples):
        path = f"{args.out}.{i}.edges"
        write_edge_list(sample, path)
        print(f"wrote {path} ({sample.n} vertices, {sample.m} edges)")
    if run_stats:
        print(f"# {run_stats[0].describe()}", file=sys.stderr)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    graph = _read_graph(args.input)
    stats = dataset_statistics(args.input, graph)
    print(f"vertices:       {stats.n_vertices}")
    print(f"edges:          {stats.n_edges}")
    print(f"degree min/med/avg/max: {stats.min_degree}/{stats.median_degree}"
          f"/{stats.average_degree}/{stats.max_degree}")
    if not args.no_orbits:
        orbits = automorphism_partition(graph, method=args.method).orbits
        nontrivial = [c for c in orbits.cells if len(c) > 1]
        covered = sum(len(c) for c in nontrivial)
        print(f"orbits:         {len(orbits)} ({len(nontrivial)} non-trivial, "
              f"covering {covered} vertices)")
        print(f"min orbit size: {orbits.min_cell_size()} "
              f"(the graph is {orbits.min_cell_size()}-symmetric as-is)")
        digest = certificate_digest(graph)
        print(f"certificate:    sha256:{digest} (isomorphism-invariant "
              "content key; ksymmetryd's cache address)")
    return 0


def _parse_vertex(text: str):
    return int(text) if text.lstrip("-").isdigit() else text


def _parse_vertex_list(text: str) -> list:
    return [_parse_vertex(part) for part in text.split(",") if part]


def _preview(candidates) -> str:
    shown = list(candidates)[:20]
    return f"{shown}{' ...' if len(candidates) > 20 else ''}"


def cmd_attack(args: argparse.Namespace) -> int:
    graph = _read_graph(args.input)
    model = args.model
    if model == "hierarchy":
        if args.target is None:
            raise ReproError("attack --model hierarchy needs a target vertex")
        outcome = simulate_attack(
            graph, _parse_vertex(args.target), args.measure, jobs=args.jobs
        )
        print(f"measure {outcome.measure_name}: observed value {outcome.observed_value!r}")
        print(f"candidates ({len(outcome.candidates)}): {_preview(outcome.candidates)}")
        print(f"re-identification probability: {outcome.success_probability:.4f}")
    elif model in ("adjacency", "multiset"):
        if args.attackers:
            if args.target is None:
                raise ReproError("targeted (k,l) attack needs a target vertex")
            attackers = _parse_vertex_list(args.attackers)
            target = _parse_vertex(args.target)
            located = kl_candidate_set(graph, attackers, target, kind=model)
            unlocated = kl_candidate_set(
                graph, attackers, target, kind=model, located=False
            )
            print(f"(k,{len(attackers)})-{model} attack on target {target!r} "
                  f"with attackers {attackers}")
            print(f"located candidates   ({len(located)}): {_preview(located)}")
            print(f"unlocated candidates ({len(unlocated)}): {_preview(unlocated)}")
        else:
            report = kl_anonymity_report(graph, args.ell, kind=model, jobs=args.jobs)
            print(f"(k,{report.ell})-{report.kind} sweep over "
                  f"{report.n_subsets} attacker placements")
            if report.vacuous:
                print(f"vacuous: anonymity {report.anonymity} "
                      "(no placement leaves a victim)")
            else:
                print(f"minimum anonymity: {report.anonymity}")
                print(f"worst attackers:   {list(report.attackers)}")
    elif model == "sybil":
        if not args.targets:
            raise ReproError(
                "attack --model sybil needs --targets (comma-separated victim ids)"
            )
        outcome = sybil_attack(
            graph,
            _parse_vertex_list(args.targets),
            publisher=args.publisher,
            k=args.k,
            rng=args.seed,
            n_sybils=args.sybils,
            jobs=args.jobs,
        )
        print(f"sybil attack against the {outcome.publisher} publisher: "
              f"{outcome.plan.n_sybils} sybils, "
              f"{len(outcome.recoveries)} recovered placements")
        for report in outcome.reports:
            verdict = ("RE-IDENTIFIED" if report.re_identified
                       else "exposed" if report.exposed else "misled")
            print(f"  target {report.target!r}: {report.anonymity} candidates "
                  f"[{verdict}] {_preview(report.candidates)}")
    else:  # sequential
        if args.previous is None:
            raise ReproError(
                "attack --model sequential needs --previous (release-0 edge list)"
            )
        if args.target is None:
            raise ReproError("attack --model sequential needs a target vertex")
        release0 = _read_graph(args.previous)
        outcome = sequential_attack(
            release0, graph, _parse_vertex(args.target), args.measure, jobs=args.jobs
        )
        print(f"composed attack with measure {outcome.measure_name} "
              f"({'fresh' if outcome.fresh_target else 'persistent'} target)")
        print(f"release-0 candidates ({len(outcome.release0_candidates)}): "
              f"{_preview(outcome.release0_candidates)}")
        print(f"release-1 candidates ({len(outcome.release1_candidates)}): "
              f"{_preview(outcome.release1_candidates)}")
        print(f"composed candidates  ({len(outcome.composed)}): "
              f"{_preview(outcome.composed)}")
        print(f"re-identification probability: {outcome.success_probability:.4f}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import (
        run_all,
        run_figure2,
        run_figure8,
        run_figure9,
        run_figure10,
        run_figure11,
        run_table1,
    )
    from repro.experiments.common import ExperimentContext

    if args.name == "all":
        run_all(profile=args.profile, out_dir=args.out, seed=args.seed, jobs=args.jobs)
        return 0
    runners = {
        "table1": run_table1, "figure2": run_figure2, "figure8": run_figure8,
        "figure9": run_figure9, "figure10": run_figure10, "figure11": run_figure11,
    }
    context = ExperimentContext(profile=args.profile, seed=args.seed, jobs=args.jobs)
    print(runners[args.name](context).render())
    return 0


def cmd_orbits(args: argparse.Namespace) -> int:
    graph = _read_graph(args.input)
    orbits = automorphism_partition(graph, method=args.method).orbits
    for cell in orbits.cells:
        if len(cell) > 1 or args.all:
            print(" ".join(str(v) for v in cell))
    nontrivial = sum(1 for c in orbits.cells if len(c) > 1)
    print(f"# {len(orbits)} orbits, {nontrivial} non-trivial; "
          f"anonymity floor: {orbits.min_cell_size()}", file=sys.stderr)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.baselines.kdegree import k_degree_anonymize
    from repro.baselines.levels import anonymity_report
    from repro.baselines.perturbation import random_perturbation

    graph = _read_graph(args.input)
    k = args.k

    def report_line(label: str, g, cost: str) -> None:
        report = anonymity_report(g)
        print(f"{label:<22} {cost:<20} degree={report.degree_level:<4} "
              f"neighborhood={report.neighborhood_level:<4} "
              f"combined={report.combined_level:<4} floor={report.symmetry_level}")

    report_line("naive release", graph, "-")
    kd = k_degree_anonymize(graph, k)
    report_line("k-degree", kd.graph, f"+{kd.edges_added}e")
    noise = max(1, graph.m // 10)
    rp = random_perturbation(graph, noise, noise, rng=args.seed)
    report_line("perturbation", rp.graph, f"~{2 * noise}e changed")
    ks = anonymize(graph, k)
    report_line("k-symmetry", ks.graph, f"+{ks.vertices_added}v +{ks.edges_added}e")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    # Delegates to the linter's own front end, which owns the exit-code
    # contract (0 clean / 1 findings / 2 usage error) and eager validation;
    # its usage errors must not collapse into this CLI's generic exit 1.
    from repro.lint import main as lint_main

    argv = list(args.paths)
    argv += ["--format", args.format]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.write_baseline:
        argv += ["--write-baseline", args.write_baseline]
    if args.prune_baseline:
        argv.append("--prune-baseline")
    if args.select:
        argv += ["--select", args.select]
    if args.cache_dir:
        argv += ["--cache-dir", args.cache_dir]
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


def cmd_serve(args: argparse.Namespace) -> int:
    # The service package is import-heavy (asyncio server, scheduler, cache);
    # keep it off the hot path of every other subcommand.
    from repro.service import ServiceConfig, run

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        cache_entries=args.cache_size,
        cache_spill_dir=args.cache_spill_dir,
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        request_timeout=args.request_timeout,
    )
    return run(config)


def cmd_audit(args: argparse.Namespace) -> int:
    from repro.experiments.report import audit_results, render_audit

    criteria = audit_results(args.results)
    print(render_audit(criteria))
    return 0 if all(c.passed for c in criteria) else 1


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the parallel runtime (0 = all CPUs; "
             "default: serial). Results are identical for any value.",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="ksymmetry", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("anonymize", help="publish a k-symmetric version of an edge list")
    p.add_argument("input", help="edge-list file")
    p.add_argument("-k", type=int, default=5)
    p.add_argument("--out", default="published", help="output prefix")
    p.add_argument("--method", choices=("exact", "stabilization"), default="exact")
    p.add_argument("--copy-unit", choices=("orbit", "component"), default="orbit")
    p.add_argument("--exclude-hubs", type=float, default=0.0, metavar="FRACTION",
                   help="exclude the top FRACTION of vertices by degree (f-symmetry)")
    p.set_defaults(func=cmd_anonymize)

    p = sub.add_parser("republish",
                       help="grow a publication by an insertions-only delta "
                            "and re-anonymize (sequential-release safe)")
    p.add_argument("publication", help="prefix written by 'anonymize' or a "
                                       "previous 'republish'")
    p.add_argument("delta", help="delta file: 'add-vertex <id>' / "
                                 "'add-edge <u> <v>' lines")
    p.add_argument("-k", type=int, default=5)
    p.add_argument("--out", default="republished", help="output prefix")
    p.add_argument("--engine", choices=("incremental", "full"),
                   default="incremental",
                   help="orbit engine for the frontier (results are "
                        "byte-identical; 'full' recomputes globally)")
    p.add_argument("--method", choices=("exact", "stabilization"), default="exact")
    p.add_argument("--copy-unit", choices=("orbit", "component"), default="orbit")
    p.set_defaults(func=cmd_republish)

    p = sub.add_parser("sample", help="draw sample graphs from a publication")
    p.add_argument("publication", help="prefix written by 'anonymize'")
    p.add_argument("--count", type=int, default=5)
    p.add_argument("--strategy", choices=("approximate", "exact"), default="approximate")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--out", default="sample", help="output prefix")
    _add_jobs_flag(p)
    p.set_defaults(func=cmd_sample)

    p = sub.add_parser("stats", help="statistics and orbit structure of an edge list")
    p.add_argument("input")
    p.add_argument("--method", choices=("exact", "stabilization"), default="exact")
    p.add_argument("--no-orbits", action="store_true")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("attack", help="run a re-identification attack")
    p.add_argument("input")
    p.add_argument("target", nargs="?",
                   help="target vertex (hierarchy/sequential and targeted "
                        "(k,l) modes)")
    p.add_argument("--model",
                   choices=("hierarchy", "adjacency", "multiset", "sybil",
                            "sequential"),
                   default="hierarchy",
                   help="adversary model (default: the paper's measure "
                        "hierarchy)")
    p.add_argument("--measure", choices=sorted(MEASURES), default="combined")
    p.add_argument("--ell", type=int, default=1,
                   help="attacker budget for the (k,l) sweep (default 1)")
    p.add_argument("--attackers",
                   help="comma-separated attacker vertex ids: run a targeted "
                        "(k,l) attack instead of the sweep")
    p.add_argument("--targets",
                   help="comma-separated victim ids for --model sybil")
    p.add_argument("--sybils", type=int,
                   help="sybil count (default: smallest feasible)")
    p.add_argument("--publisher", choices=("naive", "ksymmetry"),
                   default="ksymmetry",
                   help="publisher the sybil attack runs against")
    p.add_argument("--k", type=int, default=2,
                   help="anonymity threshold for the ksymmetry publisher")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for the sybil plant")
    p.add_argument("--previous",
                   help="release-0 edge list for --model sequential "
                        "(input is release 1)")
    _add_jobs_flag(p)
    p.set_defaults(func=cmd_attack)

    p = sub.add_parser("experiment", help="run a paper experiment")
    p.add_argument("name", choices=("table1", "figure2", "figure8", "figure9",
                                    "figure10", "figure11", "all"))
    p.add_argument("--profile", choices=("quick", "full"), default="full")
    p.add_argument("--seed", type=int, default=2010)
    p.add_argument("--out", default="results")
    _add_jobs_flag(p)
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser("audit", help="check saved experiment results against the paper's claims")
    p.add_argument("results", nargs="?", default="results")
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser("orbits", help="print the automorphism partition of an edge list")
    p.add_argument("input")
    p.add_argument("--method", choices=("exact", "stabilization"), default="exact")
    p.add_argument("--all", action="store_true", help="print singleton orbits too")
    p.set_defaults(func=cmd_orbits)

    p = sub.add_parser("lint",
                       help="AST-based determinism & invariant linter (alias "
                            "of 'python -m repro.lint')")
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to lint (default: src)")
    p.add_argument("--format", choices=("text", "json", "sarif"), default="text")
    p.add_argument("--baseline", metavar="FILE", default=None,
                   help="suppress findings fingerprinted in FILE")
    p.add_argument("--write-baseline", metavar="FILE", default=None)
    p.add_argument("--prune-baseline", action="store_true",
                   help="rewrite --baseline without stale entries")
    p.add_argument("--select", metavar="CODES", default=None,
                   help="comma-separated rule codes to run")
    p.add_argument("--cache-dir", metavar="DIR", default=None,
                   help="content-hash summary cache for warm runs")
    p.add_argument("--list-rules", action="store_true")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("compare",
                       help="measure anonymity levels of baseline mechanisms side by side")
    p.add_argument("input")
    p.add_argument("-k", type=int, default=3)
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("serve",
                       help="run ksymmetryd, the anonymization-as-a-service "
                            "daemon (see docs/service.md)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8777,
                   help="TCP port (0 = ephemeral; the bound port is printed "
                        "on startup)")
    _add_jobs_flag(p)
    p.add_argument("--cache-size", type=int, default=128, metavar="ENTRIES",
                   help="artifact cache capacity (LRU)")
    p.add_argument("--cache-spill-dir", default=None, metavar="DIR",
                   help="spill evicted artifacts to DIR and reload on miss")
    p.add_argument("--max-queue", type=int, default=64,
                   help="bounded scheduler queue; beyond it requests get "
                        "429 + Retry-After")
    p.add_argument("--max-batch", type=int, default=16,
                   help="requests coalesced per worker-pool dispatch")
    p.add_argument("--request-timeout", type=float, default=300.0,
                   metavar="SECONDS",
                   help="synchronous wait bound before 504 (the job keeps "
                        "running and stays pollable)")
    p.set_defaults(func=cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if getattr(args, "jobs", None) is not None:
            # Validate eagerly: batch-kernel paths never resolve jobs, and a
            # bad value must not be silently accepted on those commands.
            from repro.runtime import resolve_jobs

            resolve_jobs(args.jobs)
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
