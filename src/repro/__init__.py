"""k-symmetry: identity anonymization for social networks.

A complete, from-scratch reproduction of

    Wentao Wu, Yanghua Xiao, Wei Wang, Zhenying He, Zhihui Wang.
    "K-Symmetry Model for Identity Anonymization in Social Networks."
    EDBT 2010.

The model: modify a naively-anonymized network (vertex/edge insertions only)
until every vertex has at least k-1 automorphically equivalent counterparts;
then *no structural background knowledge whatsoever* can narrow an adversary
below k candidates. Utility is recovered by publishing the tracked
sub-automorphism partition alongside the graph and letting analysts draw
backbone-preserving sample graphs.

Quickstart
----------
>>> from repro import Graph, anonymize, sample_approximate
>>> g = Graph.from_edges([(0, 1), (1, 2), (1, 3), (3, 4)])
>>> publication = anonymize(g, k=2)
>>> published_graph, published_partition, original_n = publication.published()
>>> sample = sample_approximate(published_graph, published_partition, original_n, rng=7)
>>> sample.n == original_n
True

Package map
-----------
- ``repro.graphs``       — graph substrate, permutations, partitions, I/O
- ``repro.isomorphism``  — automorphism engine (refinement + IR search),
  canonical certificates, colored isomorphism (the nauty replacement)
- ``repro.core``         — the paper's contribution: orbit copying,
  Algorithm 1, f-symmetry, backbone, both samplers
- ``repro.attacks``      — structural knowledge, candidate sets, r_f/s_f
- ``repro.metrics``      — degree/path/clustering/resilience/KS utilities
- ``repro.datasets``     — paper example graphs + Table 1 stand-ins
- ``repro.experiments``  — one runner per table/figure of the paper
- ``repro.runtime``      — deterministic parallel execution engine
  (``ParallelMap``, per-task RNG streams, ``RunStats``)
"""

from repro.attacks import candidate_set, measure_partition, simulate_attack
from repro.core import (
    AnonymizationResult,
    anonymize,
    anonymize_f,
    backbone,
    is_k_symmetric,
    naive_anonymization,
    sample_approximate,
    sample_exact,
    sample_many,
    verify_anonymization,
)
from repro.graphs import Graph, Partition, Permutation
from repro.isomorphism import automorphism_group, automorphism_partition
from repro.runtime import ParallelMap, RunStats, parallel_map

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "Partition",
    "Permutation",
    "automorphism_partition",
    "automorphism_group",
    "naive_anonymization",
    "anonymize",
    "anonymize_f",
    "AnonymizationResult",
    "backbone",
    "sample_exact",
    "sample_approximate",
    "sample_many",
    "is_k_symmetric",
    "verify_anonymization",
    "simulate_attack",
    "candidate_set",
    "measure_partition",
    "ParallelMap",
    "RunStats",
    "parallel_map",
    "__version__",
]
