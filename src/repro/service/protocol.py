"""Request schemas for ksymmetryd and per-tenant seed namespacing.

Every POST body is a JSON object. Common fields:

``tenant``   opaque namespace string (default ``"public"``); results for a
             tenant are a pure function of (tenant, request body), so two
             tenants submitting the same job get independent — but each
             individually reproducible — randomness.
``seed``     integer RNG seed (default 0); combined with the tenant through
             :func:`repro.utils.rng.derive_seed`, never used raw.
``async``    submit-and-poll instead of wait-for-result (default false).
``edges``    the input graph as edge-list text (the format of
             :mod:`repro.graphs.io`; integer vertices required).

Endpoint-specific fields are validated here into frozen request dataclasses;
anything malformed raises :class:`ProtocolError`, which the daemon maps to a
400 response. Validation is strict by design — the daemon is a publication
surface, and a silently-defaulted parameter would change what gets released.
"""

from __future__ import annotations

import io
import math
from dataclasses import dataclass

from repro.attacks.knowledge import MEASURES
from repro.core.republish import GraphDelta
from repro.graphs.graph import Graph
from repro.graphs.io import read_edge_list
from repro.utils.rng import derive_seed
from repro.utils.validation import AnonymizationError, ReproError

#: sanity caps; the service is not a place to submit unbounded work
MAX_K = 1024
MAX_SAMPLES = 1024
MAX_TENANT_LENGTH = 128
MAX_DELTA_VERTICES = 1024
MAX_DELTA_EDGES = 4096
MAX_ELL = 3
MAX_SYBILS = 4
MAX_SYBIL_TARGETS = 8
#: upper bound on attacker placements a (k,l) sweep may enumerate
MAX_KL_SUBSETS = 200_000

_METHODS = ("exact", "stabilization")
_COPY_UNITS = ("orbit", "component")
_STRATEGIES = ("approximate", "exact")
_ENGINES = ("incremental", "full")

#: attack models /v1/attack-audit accepts (hierarchy is the legacy default)
ATTACK_MODELS = ("hierarchy", "adjacency", "multiset", "sybil")


class ProtocolError(Exception):
    """A request failed validation; maps to HTTP 400."""


@dataclass(frozen=True)
class PublishParams:
    k: int = 2
    method: str = "exact"
    copy_unit: str = "orbit"

    def cache_token(self) -> str:
        return f"k={self.k}:method={self.method}:copy_unit={self.copy_unit}"


@dataclass(frozen=True)
class PublishRequest:
    tenant: str
    seed: int
    run_async: bool
    edges_text: str
    params: PublishParams

    kind = "publish"


@dataclass(frozen=True)
class SampleRequest:
    tenant: str
    seed: int
    run_async: bool
    edges_text: str
    params: PublishParams
    count: int
    strategy: str

    kind = "sample"


@dataclass(frozen=True)
class AuditRequest:
    """An attack-audit job; which fields matter depends on ``model``.

    ``hierarchy`` (legacy default) runs the structural-measure attack of
    :func:`repro.attacks.reidentify.simulate_attack` against ``target``
    using ``measure``.  ``adjacency`` / ``multiset`` run the (k,l) models:
    a whole-graph minimum-anonymity sweep over ``ell`` attacker accounts,
    or — when ``attackers`` (and then ``target``) are given — a targeted
    candidate-set query.  ``sybil`` plants ``sybils`` attacker accounts
    fingerprinting ``targets`` before a k-symmetry publication with
    threshold ``k`` and reports recovery/re-identification per target.
    """

    tenant: str
    seed: int
    run_async: bool
    edges_text: str
    target: int | None
    measure: str
    model: str = "hierarchy"
    ell: int = 1
    attackers: tuple[int, ...] = ()
    targets: tuple[int, ...] = ()
    sybils: int = 0
    k: int = 2

    kind = "attack-audit"


@dataclass(frozen=True)
class RepublishRequest:
    """A sequential release: ``edges`` is the *original* release-0 input.

    The daemon reuses (or deterministically recomputes) the cached publish
    artifact for ``edges`` under the same publish params, then applies the
    insertions-only delta via :func:`repro.core.republish.republish_published`
    — so release 0 of the response history is byte-identical to what
    ``POST /v1/publish`` returned for the same input.
    """

    tenant: str
    seed: int
    run_async: bool
    edges_text: str
    params: PublishParams
    engine: str
    delta_vertices: tuple[int, ...]
    delta_edges: tuple[tuple[int, int], ...]

    kind = "republish"

    def delta(self) -> GraphDelta:
        return GraphDelta(self.delta_vertices, self.delta_edges)


Request = PublishRequest | SampleRequest | AuditRequest | RepublishRequest


def effective_seed(tenant: str, seed: int) -> int:
    """The seed actually handed to samplers: namespaced per tenant.

    ``derive_seed`` mixes the tenant label into the request seed through a
    stable SHA-256 digest, so tenants sharing a seed value still draw
    independent streams, and one tenant's results are bit-reproducible
    whatever other tenants are doing concurrently.
    """
    return derive_seed(seed, f"tenant/{tenant}")


def _expect(obj: dict, key: str, kind: type, default: object = ...) -> object:
    if key not in obj:
        if default is ...:
            raise ProtocolError(f"missing required field {key!r}")
        return default
    value = obj[key]
    if kind is int and isinstance(value, bool):
        raise ProtocolError(f"field {key!r} must be {kind.__name__}, got bool")
    if not isinstance(value, kind):
        raise ProtocolError(
            f"field {key!r} must be {kind.__name__}, got {type(value).__name__}")
    return value


def _common(obj: dict) -> tuple[str, int, bool]:
    tenant = _expect(obj, "tenant", str, "public")
    if not tenant or len(tenant) > MAX_TENANT_LENGTH or not tenant.isprintable():
        raise ProtocolError("tenant must be a printable, non-empty string of "
                            f"at most {MAX_TENANT_LENGTH} characters")
    seed = _expect(obj, "seed", int, 0)
    run_async = _expect(obj, "async", bool, False)
    return tenant, seed, run_async


def _edges_text(obj: dict) -> str:
    text = _expect(obj, "edges", str)
    if not text.strip():
        raise ProtocolError("field 'edges' must contain a non-empty edge list")
    return text


def _publish_params(obj: dict) -> PublishParams:
    k = _expect(obj, "k", int, 2)
    if not 1 <= k <= MAX_K:
        raise ProtocolError(f"k must be in 1..{MAX_K}, got {k}")
    method = _expect(obj, "method", str, "exact")
    if method not in _METHODS:
        raise ProtocolError(f"method must be one of {_METHODS}, got {method!r}")
    copy_unit = _expect(obj, "copy_unit", str, "orbit")
    if copy_unit not in _COPY_UNITS:
        raise ProtocolError(
            f"copy_unit must be one of {_COPY_UNITS}, got {copy_unit!r}")
    return PublishParams(k=k, method=method, copy_unit=copy_unit)


def _ensure_dict(payload: object) -> dict:
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request body must be a JSON object, got {type(payload).__name__}")
    return payload


def parse_publish(payload: object) -> PublishRequest:
    obj = _ensure_dict(payload)
    tenant, seed, run_async = _common(obj)
    return PublishRequest(tenant=tenant, seed=seed, run_async=run_async,
                          edges_text=_edges_text(obj), params=_publish_params(obj))


def parse_sample(payload: object) -> SampleRequest:
    obj = _ensure_dict(payload)
    tenant, seed, run_async = _common(obj)
    count = _expect(obj, "count", int, 1)
    if not 1 <= count <= MAX_SAMPLES:
        raise ProtocolError(f"count must be in 1..{MAX_SAMPLES}, got {count}")
    strategy = _expect(obj, "strategy", str, "approximate")
    if strategy not in _STRATEGIES:
        raise ProtocolError(
            f"strategy must be one of {_STRATEGIES}, got {strategy!r}")
    return SampleRequest(tenant=tenant, seed=seed, run_async=run_async,
                         edges_text=_edges_text(obj), params=_publish_params(obj),
                         count=count, strategy=strategy)


def _forbid(obj: dict, model: str, *keys: str) -> None:
    """Strictness: fields another model would read must not ride along."""
    for key in keys:
        if key in obj:
            raise ProtocolError(
                f"field {key!r} does not apply to model {model!r}")


def _vertex_list(obj: dict, key: str, cap: int) -> tuple[int, ...]:
    raw = _expect(obj, key, list)
    if not raw or len(raw) > cap:
        raise ProtocolError(
            f"field {key!r} must list 1..{cap} vertices, got {len(raw)}")
    for v in raw:
        if isinstance(v, bool) or not isinstance(v, int):
            raise ProtocolError(
                f"field {key!r} must contain integer vertices, got {v!r}")
    if len(set(raw)) != len(raw):
        raise ProtocolError(f"field {key!r} must not repeat vertices")
    return tuple(raw)


def parse_audit(payload: object) -> AuditRequest:
    obj = _ensure_dict(payload)
    tenant, seed, run_async = _common(obj)
    edges_text = _edges_text(obj)
    model = _expect(obj, "model", str, "hierarchy")
    if model not in ATTACK_MODELS:
        raise ProtocolError(
            f"model must be one of {ATTACK_MODELS}, got {model!r}")
    target: int | None = None
    measure = "combined"
    ell = 1
    attackers: tuple[int, ...] = ()
    targets: tuple[int, ...] = ()
    sybils = 0
    k = 2
    if model == "hierarchy":
        _forbid(obj, model, "ell", "attackers", "targets", "sybils", "k")
        target = _expect(obj, "target", int)
        measure = _expect(obj, "measure", str, "combined")
        if measure not in MEASURES:
            raise ProtocolError(
                f"measure must be one of {sorted(MEASURES)}, got {measure!r}")
    elif model in ("adjacency", "multiset"):
        _forbid(obj, model, "measure", "targets", "sybils", "k")
        if "attackers" in obj:
            attackers = _vertex_list(obj, "attackers", MAX_ELL)
            target = _expect(obj, "target", int)
            if target in attackers:
                raise ProtocolError("target must not be an attacker vertex")
            if "ell" in obj and _expect(obj, "ell", int) != len(attackers):
                raise ProtocolError(
                    "field 'ell' must equal len(attackers) when both are given")
            ell = len(attackers)
        else:
            if "target" in obj:
                raise ProtocolError(
                    f"a targeted {model} audit needs 'attackers' "
                    "alongside 'target'")
            ell = _expect(obj, "ell", int, 1)
            if not 1 <= ell <= MAX_ELL:
                raise ProtocolError(f"ell must be in 1..{MAX_ELL}, got {ell}")
    else:  # sybil
        _forbid(obj, model, "measure", "ell", "attackers", "target")
        targets = _vertex_list(obj, "targets", MAX_SYBIL_TARGETS)
        sybils = _expect(obj, "sybils", int, 0)
        if sybils and not 2 <= sybils <= MAX_SYBILS:
            raise ProtocolError(
                f"sybils must be 0 (auto) or 2..{MAX_SYBILS}, got {sybils}")
        if sybils and 2 ** sybils - 1 < len(targets):
            raise ProtocolError(
                f"{sybils} sybils can fingerprint at most "
                f"{2 ** sybils - 1} distinct targets, got {len(targets)}")
        k = _expect(obj, "k", int, 2)
        if not 1 <= k <= MAX_K:
            raise ProtocolError(f"k must be in 1..{MAX_K}, got {k}")
    return AuditRequest(tenant=tenant, seed=seed, run_async=run_async,
                        edges_text=edges_text, target=target,
                        measure=measure, model=model, ell=ell,
                        attackers=attackers, targets=targets,
                        sybils=sybils, k=k)


def validate_audit_graph(request: AuditRequest, graph: Graph) -> None:
    """Graph-dependent audit validation (the daemon runs this post-parse)."""
    def member(role: str, v: int) -> None:
        if v not in graph:
            raise ProtocolError(f"{role} {v} is not a vertex of the graph")

    if request.model == "hierarchy":
        assert request.target is not None
        member("target", request.target)
        return
    if request.model in ("adjacency", "multiset"):
        for v in request.attackers:
            member("attacker", v)
        if request.target is not None:
            member("target", request.target)
        if not request.attackers:
            top = min(request.ell, max(graph.n - 1, 0))
            subsets = sum(math.comb(graph.n, s) for s in range(1, top + 1))
            if subsets > MAX_KL_SUBSETS:
                raise ProtocolError(
                    f"a (k,l) sweep over this graph enumerates {subsets} "
                    f"attacker placements (cap {MAX_KL_SUBSETS}); submit a "
                    "targeted audit with explicit 'attackers' instead")
        return
    for v in request.targets:
        member("sybil target", v)


def parse_republish(payload: object) -> RepublishRequest:
    obj = _ensure_dict(payload)
    tenant, seed, run_async = _common(obj)
    engine = _expect(obj, "engine", str, "incremental")
    if engine not in _ENGINES:
        raise ProtocolError(f"engine must be one of {_ENGINES}, got {engine!r}")
    delta_obj = _expect(obj, "delta", dict)
    vertices = delta_obj.get("add_vertices", [])
    edges = delta_obj.get("add_edges", [])
    if not isinstance(vertices, list) or not isinstance(edges, list):
        raise ProtocolError(
            "field 'delta' must carry 'add_vertices' and 'add_edges' lists")
    if not vertices:
        raise ProtocolError("delta must add at least one vertex")
    if len(vertices) > MAX_DELTA_VERTICES:
        raise ProtocolError(
            f"delta adds {len(vertices)} vertices, cap is {MAX_DELTA_VERTICES}")
    if len(edges) > MAX_DELTA_EDGES:
        raise ProtocolError(
            f"delta adds {len(edges)} edges, cap is {MAX_DELTA_EDGES}")
    pairs: list[tuple[int, int]] = []
    for entry in edges:
        if not isinstance(entry, list) or len(entry) != 2:
            raise ProtocolError(
                f"delta edges must be [u, v] pairs, got {entry!r}")
        pairs.append((entry[0], entry[1]))
    try:
        # GraphDelta normalizes (sorted, deduplicated) and type-checks.
        delta = GraphDelta(vertices, pairs)
    except AnonymizationError as exc:
        raise ProtocolError(f"bad delta: {exc}") from exc
    return RepublishRequest(tenant=tenant, seed=seed, run_async=run_async,
                            edges_text=_edges_text(obj),
                            params=_publish_params(obj), engine=engine,
                            delta_vertices=delta.add_vertices,
                            delta_edges=delta.add_edges)


def parse_graph(edges_text: str) -> Graph:
    """Parse and validate the request's edge-list text into a graph."""
    try:
        graph = read_edge_list(io.StringIO(edges_text))
    except ReproError as exc:
        raise ProtocolError(f"bad edge list: {exc}") from exc
    if graph.n == 0:
        raise ProtocolError("the submitted graph has no vertices")
    non_int = [v for v in graph.vertices() if not isinstance(v, int)]
    if non_int:
        raise ProtocolError(
            f"service graphs must use integer vertices; saw {non_int[0]!r}")
    return graph
