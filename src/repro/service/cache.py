"""Content-addressed artifact cache: in-memory LRU with optional disk spill.

Keys are strings built from the isomorphism-invariant certificate digest of
the input graph plus every parameter the artifact depends on (see
:mod:`repro.service.handlers` for the exact key schemas). Values are plain
JSON-serialisable dicts in *canonical* vertex space — never response bytes —
so a hit can be relabelled for any requester (:mod:`repro.service.canon`).

Eviction is LRU over a bounded entry count. With a spill directory
configured, evicted artifacts are written to disk (atomic rename) and
transparently reloaded on a later miss, which promotes them back into
memory and removes the spill file (the entry lives in exactly one tier at
a time). A spill reload counts as a ``spill_hit`` only — ``hits`` counts
in-memory hits, so ``hits / (hits + spill_hits + misses)`` is an honest
memory hit rate in ``/v1/metrics``.

Spill files embed their cache key (``{"key": ..., "artifact": ...}``), so a
restarted process can do more than lazily re-load on exact-key misses: the
daemon calls :meth:`ArtifactCache.warm_up` on boot to rescan the spill
directory and promote the most recently spilled artifacts back into memory,
and :meth:`ArtifactCache.spill_all` on shutdown to persist whatever is in
memory — completed async results survive a service restart *warm*. Files in
the pre-key legacy format (the raw artifact dict) are still honoured by
lazy per-key loads; ``warm_up`` skips them.

The cache is touched only from the scheduler's single batch thread, so no
locking is needed; the integer counters are read (not written) from the
event loop for ``/v1/metrics``, which is safe under the GIL.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict


class ArtifactCache:
    """Bounded LRU of JSON-serialisable artifacts with optional disk spill."""

    def __init__(self, max_entries: int = 128, spill_dir: str | None = None) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.spill_dir = spill_dir
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.spill_hits = 0
        self.puts = 0
        if spill_dir:
            os.makedirs(spill_dir, exist_ok=True)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> dict | None:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry
        spilled = self._load_spilled(key)
        if spilled is not None:
            self.spill_hits += 1
            self._insert(key, spilled)
            self._remove_spilled(key)
            return spilled
        self.misses += 1
        return None

    def put(self, key: str, artifact: dict) -> None:
        self.puts += 1
        self._insert(key, artifact)

    def stats(self) -> dict[str, int]:
        """Counters with sorted keys (serialised verbatim by ``/v1/metrics``)."""
        return dict(sorted({
            "entries": len(self._entries),
            "evictions": self.evictions,
            "hits": self.hits,
            "max_entries": self.max_entries,
            "misses": self.misses,
            "puts": self.puts,
            "spill_hits": self.spill_hits,
        }.items()))

    # ------------------------------------------------------------------

    def warm_up(self) -> int:
        """Promote spilled artifacts back into memory after a restart.

        Scans the spill directory, loads every file in the keyed format, and
        inserts the artifacts in spill-age order (oldest first, ties broken
        by filename) so the most recently spilled entries end up most
        recently used — and survive should the scan overflow ``max_entries``
        and re-evict. Loaded files are removed (one tier at a time); legacy
        or corrupt files are left for the lazy per-key path. Returns the
        number of artifacts promoted.
        """
        if not self.spill_dir or not os.path.isdir(self.spill_dir):
            return 0
        candidates = [
            os.path.join(self.spill_dir, name)
            for name in os.listdir(self.spill_dir)
            if name.endswith(".json")
        ]
        candidates.sort(key=lambda path: (os.path.getmtime(path), path))
        warmed = 0
        for path in candidates:
            try:
                with open(path, encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            key, artifact = self._unwrap(path, payload)
            if key is None:
                continue
            self._insert(key, artifact)
            try:
                os.remove(path)
            except FileNotFoundError:
                pass
            warmed += 1
        return warmed

    def spill_all(self) -> int:
        """Spill every in-memory entry to disk (for graceful shutdown).

        Entries leave memory in LRU order, so on disk the most recently used
        artifacts carry the newest mtimes and :meth:`warm_up` restores the
        same recency order. No-op without a spill directory; returns the
        number of entries written.
        """
        if not self.spill_dir:
            return 0
        written = 0
        while self._entries:
            key, artifact = self._entries.popitem(last=False)
            self._spill(key, artifact)
            written += 1
        return written

    @staticmethod
    def _unwrap(path: str, payload) -> tuple[str | None, dict | None]:
        """(key, artifact) for a keyed spill file, (None, None) otherwise.

        A keyed file holds exactly ``{"key", "artifact"}`` and its filename
        is the key's hash — the hash check rejects a legacy raw artifact
        that merely happens to carry those two fields.
        """
        if not (isinstance(payload, dict) and set(payload) == {"key", "artifact"}):
            return None, None
        key = payload["key"]
        if not isinstance(key, str):
            return None, None
        name = hashlib.sha256(key.encode("utf-8")).hexdigest()
        if os.path.basename(path) != f"{name}.json":
            return None, None
        return key, payload["artifact"]

    # ------------------------------------------------------------------

    def _insert(self, key: str, artifact: dict) -> None:
        self._entries[key] = artifact
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            victim_key, victim = self._entries.popitem(last=False)
            self.evictions += 1
            self._spill(victim_key, victim)

    def _spill_path(self, key: str) -> str:
        assert self.spill_dir is not None
        name = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return os.path.join(self.spill_dir, f"{name}.json")

    def _spill(self, key: str, artifact: dict) -> None:
        if not self.spill_dir:
            return
        path = self._spill_path(key)
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(
                {"key": key, "artifact": artifact},
                handle, sort_keys=True, separators=(",", ":"),
            )
        os.replace(tmp, path)

    def _load_spilled(self, key: str) -> dict | None:
        if not self.spill_dir:
            return None
        path = self._spill_path(key)
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        unwrapped_key, artifact = self._unwrap(path, payload)
        if unwrapped_key is not None:
            return artifact
        # Legacy spill file: the payload is the raw artifact.
        return payload

    def _remove_spilled(self, key: str) -> None:
        if not self.spill_dir:
            return
        try:
            os.remove(self._spill_path(key))
        except FileNotFoundError:
            pass
