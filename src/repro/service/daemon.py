"""ksymmetryd — the anonymization-as-a-service daemon.

Endpoints (all JSON in; JSON or chunked NDJSON out):

* ``POST /v1/publish``      anonymize a graph, stream the publication triple
* ``POST /v1/sample``       publish + draw sample graphs for analysis
* ``POST /v1/attack-audit`` re-identification check of a graph under a
  chosen attack model (hierarchy / adjacency / multiset / sybil)
* ``POST /v1/republish``    sequential release: publish + insertions delta
* ``GET  /v1/jobs/<id>``    status/result of a job (async submissions poll)
* ``GET  /v1/metrics``      cache/scheduler/endpoint counters
* ``GET  /healthz``         liveness + drain state

Guarantees (see docs/service.md for the full contract):

* **Reproducibility** — a 200 response body of the POST endpoints is
  a pure function of (request body); per-tenant results are byte-identical
  whatever the concurrency level, arrival order, worker count, or cache
  state, because randomness is namespaced via the tenant-derived seed and
  cached artifacts live in canonical vertex space.
* **Backpressure** — a full scheduler queue rejects with ``429`` and a
  ``Retry-After`` header scaled to the current queue depth instead of
  accepting unbounded work.
* **Graceful shutdown** — SIGTERM/SIGINT stop accepting, drain every
  accepted job, flush in-flight responses, then exit 0. If the drain
  grace period expires with responses still in flight, the abandoned
  count is logged to stderr and the daemon exits 1.
"""

from __future__ import annotations

import asyncio
import signal
import sys
from dataclasses import dataclass

from repro.core.republish import validate_delta
from repro.runtime import Stopwatch, peak_rss_bytes
from repro.service import handlers
from repro.service.cache import ArtifactCache
from repro.service.httpio import HTTPError, HTTPRequest, ResponseWriter, read_request
from repro.service.jobs import Job, JobRegistry
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    AuditRequest,
    ProtocolError,
    RepublishRequest,
    parse_audit,
    parse_graph,
    parse_publish,
    parse_republish,
    parse_sample,
    validate_audit_graph,
)
from repro.service.scheduler import BatchScheduler, SchedulerFull
from repro.utils.validation import AnonymizationError

#: floor for the Retry-After value sent with 429 responses, in seconds
RETRY_AFTER_SECONDS = 1


def retry_after_seconds(queued: int, max_batch: int) -> int:
    """Retry-After for a 429, scaled to queue depth.

    One batch is the scheduler's unit of progress, so ``ceil(queued /
    max_batch)`` batches stand between the client and a free slot; a fixed
    constant under-advises exactly when the queue is deepest.
    """
    return max(RETRY_AFTER_SECONDS, -(-queued // max(1, max_batch)))


@dataclass
class ServiceConfig:
    host: str = "127.0.0.1"
    port: int = 8777
    #: worker processes for the batch pool (None = REPRO_JOBS env, else serial)
    jobs: int | None = None
    cache_entries: int = 128
    cache_spill_dir: str | None = None
    max_queue: int = 64
    max_batch: int = 16
    #: seconds a synchronous request waits for its job before 504
    request_timeout: float = 300.0
    #: request body size bound, bytes
    max_body: int = 8 * 1024 * 1024
    #: terminal jobs kept pollable under /v1/jobs
    keep_jobs: int = 256
    #: grace period for in-flight connections at shutdown, seconds
    drain_grace: float = 10.0


class KSymmetryDaemon:
    """One server instance; ``start`` binds, ``shutdown`` drains."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.cache = ArtifactCache(self.config.cache_entries,
                                   self.config.cache_spill_dir)
        self.scheduler = BatchScheduler(jobs=self.config.jobs,
                                        max_queue=self.config.max_queue,
                                        max_batch=self.config.max_batch,
                                        cache=self.cache)
        self.registry = JobRegistry(self.config.keep_jobs)
        self.metrics = ServiceMetrics()
        #: artifacts promoted from the spill directory at the last start()
        self.cache_warmed = 0
        self._server: asyncio.Server | None = None
        self._draining = False
        self._terminated = asyncio.Event()
        self._finalizers: set[asyncio.Task] = set()
        self._connections: set[asyncio.Task] = set()
        self._active_requests = 0
        self._idle = asyncio.Event()
        self._idle.set()
        #: requests still in flight when the drain grace period expired —
        #: their connections were cancelled, so their clients saw no response
        self.abandoned_requests = 0

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        # Rescan the spill directory before serving: async results spilled
        # (or flushed at shutdown) by a previous incarnation come back warm.
        self.cache_warmed = self.cache.warm_up()
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port)

    @property
    def bound_port(self) -> int:
        assert self._server is not None and self._server.sockets
        port = self._server.sockets[0].getsockname()[1]
        return int(port)

    async def wait_terminated(self) -> None:
        await self._terminated.wait()

    async def shutdown(self) -> None:
        """Stop accepting, drain accepted jobs, flush responses, terminate."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.scheduler.drain()
        if self._finalizers:
            await asyncio.gather(*self._finalizers, return_exceptions=True)
        try:
            await asyncio.wait_for(self._idle.wait(), self.config.drain_grace)
        except asyncio.TimeoutError:
            self.abandoned_requests = self._active_requests
            print(
                f"ksymmetryd: drain grace ({self.config.drain_grace}s) expired "
                f"with {self.abandoned_requests} request(s) still in flight; "
                "abandoning them",
                file=sys.stderr, flush=True)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        # Persist the in-memory tier so the next incarnation warms up with it.
        self.cache.spill_all()
        self._terminated.set()

    # -- connection handling --------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        while True:
            try:
                request = await read_request(reader,
                                             max_body=self.config.max_body)
            except HTTPError as exc:
                response = ResponseWriter(writer, keep_alive=False)
                await response.send_error(exc.status, exc.message)
                return
            except ConnectionError:
                return
            if request is None:
                return
            keep_alive = request.keep_alive and not self._draining
            response = ResponseWriter(writer, keep_alive=keep_alive)
            self._request_started()
            watch = Stopwatch()
            try:
                endpoint, status = await self._dispatch(request, response)
            except ConnectionError:
                return
            except Exception as exc:  # noqa: BLE001 - must answer, not die
                endpoint, status = "internal", 500
                if not response.started:
                    await response.send_error(500, f"internal error: {exc!r}")
            finally:
                self._request_finished()
            self.metrics.observe(endpoint, status, watch.elapsed())
            if not keep_alive:
                return

    def _request_started(self) -> None:
        self._active_requests += 1
        self._idle.clear()

    def _request_finished(self) -> None:
        self._active_requests -= 1
        if self._active_requests == 0:
            self._idle.set()

    # -- routing --------------------------------------------------------

    async def _dispatch(self, request: HTTPRequest,
                        response: ResponseWriter) -> tuple[str, int]:
        path = request.path.rstrip("/") or "/"
        if path == "/healthz":
            return await self._get_only(request, response, "healthz",
                                        self._handle_healthz)
        if path == "/v1/metrics":
            return await self._get_only(request, response, "metrics",
                                        self._handle_metrics)
        if path.startswith("/v1/jobs/"):
            return await self._get_only(request, response, "jobs",
                                        self._handle_job, path[len("/v1/jobs/"):])
        if path == "/v1/publish":
            return await self._post_job(request, response, "publish",
                                        parse_publish)
        if path == "/v1/sample":
            return await self._post_job(request, response, "sample",
                                        parse_sample)
        if path == "/v1/attack-audit":
            return await self._post_job(request, response, "attack-audit",
                                        parse_audit)
        if path == "/v1/republish":
            return await self._post_job(request, response, "republish",
                                        parse_republish)
        await response.send_error(404, f"no such endpoint: {request.path}")
        return "unknown", 404

    async def _get_only(self, request: HTTPRequest, response: ResponseWriter,
                        endpoint: str, handler, *args) -> tuple[str, int]:
        if request.method != "GET":
            await response.send_error(405, f"{endpoint} only supports GET")
            return endpoint, 405
        status = await handler(response, *args)
        return endpoint, status

    async def _handle_healthz(self, response: ResponseWriter) -> int:
        await response.send_json(200, {
            "queued": self.scheduler.queued,
            "status": "draining" if self._draining else "ok",
        })
        return 200

    async def _handle_metrics(self, response: ResponseWriter) -> int:
        await response.send_json(200, {
            "cache": self.cache.stats(),
            "cache_warmed": self.cache_warmed,
            "endpoints": self.metrics.snapshot(),
            "jobs": self.registry.stats(),
            "peak_rss_bytes": peak_rss_bytes(),
            "scheduler": self.scheduler.stats(),
        })
        return 200

    async def _handle_job(self, response: ResponseWriter, job_id: str) -> int:
        job = self.registry.get(job_id)
        if job is None:
            await response.send_error(404, f"unknown job {job_id!r}")
            return 404
        await response.send_json(200, job.descriptor())
        return 200

    # -- the three POST endpoints ---------------------------------------

    async def _post_job(self, request: HTTPRequest, response: ResponseWriter,
                        endpoint: str, parse) -> tuple[str, int]:
        if request.method != "POST":
            await response.send_error(405, f"{endpoint} only supports POST")
            return endpoint, 405
        if self._draining:
            await response.send_error(503, "daemon is draining; resubmit")
            return endpoint, 503
        try:
            parsed = parse(request.json())
            graph = parse_graph(parsed.edges_text)
            if isinstance(parsed, AuditRequest):
                validate_audit_graph(parsed, graph)
            if isinstance(parsed, RepublishRequest):
                try:
                    validate_delta(parsed.delta(), graph)
                except AnonymizationError as exc:
                    raise ProtocolError(f"bad delta: {exc}") from exc
        except HTTPError as exc:
            await response.send_error(exc.status, exc.message)
            return endpoint, exc.status
        except ProtocolError as exc:
            await response.send_error(400, str(exc))
            return endpoint, 400
        job = self.registry.create(parsed, graph)
        try:
            self.scheduler.submit(job)
        except SchedulerFull as exc:
            job.state = "failed"
            job.error = str(exc)
            retry_after = retry_after_seconds(self.scheduler.queued,
                                              self.config.max_batch)
            await response.send_error(
                429, str(exc),
                extra_headers={"Retry-After": str(retry_after)})
            return endpoint, 429
        finalizer = asyncio.get_running_loop().create_task(
            self._finalize_job(job))
        self._finalizers.add(finalizer)
        finalizer.add_done_callback(self._finalizers.discard)
        if parsed.run_async:
            await response.send_json(
                202, {"job": job.id, "poll": f"/v1/jobs/{job.id}"},
                extra_headers={"X-Job-Id": job.id})
            return endpoint, 202
        try:
            await asyncio.wait_for(job.rendered.wait(),
                                   self.config.request_timeout)
        except asyncio.TimeoutError:
            job.state = "timeout" if not job.finished else job.state
            await response.send_error(
                504, f"request timed out after {self.config.request_timeout}s; "
                     f"poll /v1/jobs/{job.id}",
                extra_headers={"X-Job-Id": job.id})
            return endpoint, 504
        return endpoint, await self._respond_finished(job, response)

    async def _respond_finished(self, job: Job,
                                response: ResponseWriter) -> int:
        headers = {"X-Job-Id": job.id}
        if job.state != "done":
            await response.send_error(
                500, job.error or "job failed", extra_headers=headers)
            return 500
        if job.result_obj is not None:
            await response.send_json(200, job.result_obj, extra_headers=headers)
            return 200
        assert job.result_lines is not None
        await response.start_ndjson(200, extra_headers=headers)
        for line in job.result_lines:
            await response.send_line(line)
        await response.finish_ndjson()
        return 200

    async def _finalize_job(self, job: Job) -> None:
        """Await the scheduler outcome and render the response payload once."""
        tag, value = await job.future
        if tag == "ok":
            ci, artifact = value
            try:
                if job.kind == "publish":
                    job.result_lines = handlers.build_publish_lines(ci, artifact)
                elif job.kind == "sample":
                    job.result_lines = handlers.build_sample_lines(ci, artifact)
                elif job.kind == "republish":
                    job.result_lines = handlers.build_republish_lines(
                        ci, job.request, artifact)
                else:
                    job.result_obj = handlers.build_audit_obj(ci, artifact)
                # a late result after a sync 504 is still valid and pollable
                job.state = "done"
            except Exception as exc:  # noqa: BLE001 - rendering must not leak
                job.state = "failed"
                job.error = f"response rendering failed: {exc!r}"
        else:
            job.state = "failed"
            job.error = str(value)
        job.rendered.set()


async def _amain(config: ServiceConfig) -> int:
    daemon = KSymmetryDaemon(config)
    await daemon.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(
                signum, lambda: loop.create_task(daemon.shutdown()))
        except NotImplementedError:  # pragma: no cover - non-unix
            pass
    print(f"ksymmetryd listening on {config.host}:{daemon.bound_port}",
          flush=True)
    await daemon.wait_terminated()
    if daemon.abandoned_requests:
        print(
            f"ksymmetryd: exited with {daemon.abandoned_requests} abandoned "
            "request(s) (drain grace expired)",
            file=sys.stderr, flush=True)
        return 1
    print("ksymmetryd drained cleanly", flush=True)
    return 0


def run(config: ServiceConfig | None = None) -> int:
    """Blocking entry point used by ``ksymmetry serve`` and ``__main__``."""
    try:
        return asyncio.run(_amain(config or ServiceConfig()))
    except KeyboardInterrupt:  # pragma: no cover - direct Ctrl-C race
        print("ksymmetryd interrupted", file=sys.stderr)
        return 130
