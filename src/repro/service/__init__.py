"""repro.service — ksymmetryd, the anonymization-as-a-service daemon.

The paper's publisher model (anonymize → publish → sample) as a long-lived,
multi-tenant request/response service on the stdlib only:

* :class:`KSymmetryDaemon` / :func:`run` — asyncio HTTP/1.1 server exposing
  ``/v1/publish``, ``/v1/sample``, ``/v1/attack-audit``, ``/v1/republish``
  (sequential releases of an evolving graph), ``/v1/jobs/<id>``,
  ``/v1/metrics``, and ``/healthz``;
* :class:`BatchScheduler` — coalesces concurrent requests into batches on a
  shared :class:`repro.runtime.ParallelMap` pool, with a bounded queue and
  ``429 Retry-After`` backpressure;
* :class:`ArtifactCache` — content-addressed LRU (optional disk spill) keyed
  by the isomorphism-invariant certificate digest plus request parameters,
  holding artifacts in canonical vertex space so isomorphic inputs from any
  tenant share the expensive work;
* :class:`ServiceClient` — blocking client used by the tests and the load
  generator (``benchmarks/bench_service.py``).

Reproducibility contract: 200 response bodies of the POST endpoints
are pure functions of their request body. Randomness is namespaced per
tenant (:func:`repro.service.protocol.effective_seed`), so any interleaving
of tenants, any queue arrival order, and any worker count produce
byte-identical per-tenant results.
"""

from repro.service.cache import ArtifactCache
from repro.service.client import ServiceClient, ServiceError, publication_from_lines
from repro.service.daemon import KSymmetryDaemon, ServiceConfig, run
from repro.service.protocol import ProtocolError, effective_seed
from repro.service.scheduler import BatchScheduler, SchedulerFull

__all__ = [
    "ArtifactCache",
    "BatchScheduler",
    "KSymmetryDaemon",
    "ProtocolError",
    "SchedulerFull",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "effective_seed",
    "publication_from_lines",
    "run",
]
