"""``python -m repro.service`` — launch ksymmetryd directly.

The same flags as ``ksymmetry serve``; kept importable without the console
script so subprocess tests and containers can start the daemon with nothing
but a checkout on ``PYTHONPATH``.
"""

from __future__ import annotations

import argparse

from repro.service.daemon import ServiceConfig, run


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="ksymmetryd: anonymization-as-a-service daemon")
    defaults = ServiceConfig()
    parser.add_argument("--host", default=defaults.host)
    parser.add_argument("--port", type=int, default=defaults.port,
                        help="TCP port (0 = ephemeral; the bound port is "
                             "printed on startup)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for the batch pool (0 = all "
                             "CPUs; default: serial). Results are identical "
                             "for any value.")
    parser.add_argument("--cache-size", type=int,
                        default=defaults.cache_entries, metavar="ENTRIES",
                        help="artifact cache capacity (LRU)")
    parser.add_argument("--cache-spill-dir", default=None, metavar="DIR",
                        help="spill evicted artifacts to DIR and reload on miss")
    parser.add_argument("--max-queue", type=int, default=defaults.max_queue,
                        help="bounded scheduler queue; beyond it requests "
                             "get 429 + Retry-After")
    parser.add_argument("--max-batch", type=int, default=defaults.max_batch,
                        help="requests coalesced per worker-pool dispatch")
    parser.add_argument("--request-timeout", type=float,
                        default=defaults.request_timeout, metavar="SECONDS",
                        help="synchronous wait bound before 504 (the job "
                             "keeps running and stays pollable)")
    return parser


def config_from_args(args: argparse.Namespace) -> ServiceConfig:
    return ServiceConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        cache_entries=args.cache_size,
        cache_spill_dir=args.cache_spill_dir,
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        request_timeout=args.request_timeout,
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return run(config_from_args(args))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
