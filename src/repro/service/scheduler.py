"""Batching scheduler: coalesces concurrent requests onto the runtime pool.

One asyncio consumer drains the bounded submission queue in batches (up to
``max_batch`` jobs per round) and executes each batch in a worker thread via
a shared :class:`repro.runtime.ParallelMap` — so N concurrent HTTP requests
cost one pool dispatch, not N. Each batch runs two pipelined stages:

1. **canonicalize** every job's graph (certificate + labeling, the per-
   request cost that cannot be skipped — it *is* the cache key);
2. probe the :class:`~repro.service.cache.ArtifactCache` with the digests,
   then compute only the **misses** in a second pool pass and install their
   artifacts in the cache.

Backpressure is the queue bound: ``submit`` raises :class:`SchedulerFull`
synchronously when the queue is at capacity and the daemon converts that
into ``429 Retry-After``. A test-only gate (:meth:`pause`/:meth:`resume`)
holds batch consumption so queue-full and drain behaviour can be exercised
deterministically.

Determinism: per-job outcomes are pure functions of the job's request (the
cache stores canonical artifacts that recompute bit-identically on a miss),
so batch composition, arrival order, and worker count never leak into
response bodies — only into latency and the metrics counters.
"""

from __future__ import annotations

import asyncio

from repro.runtime import ParallelMap
from repro.service import handlers
from repro.service.cache import ArtifactCache
from repro.service.jobs import Job
from repro.service.protocol import (
    AuditRequest,
    PublishRequest,
    RepublishRequest,
    SampleRequest,
    effective_seed,
)


class SchedulerFull(Exception):
    """The submission queue is at capacity; the caller should retry later."""


class BatchScheduler:
    """Owns the queue, the worker pool, and the artifact cache."""

    def __init__(self, *, jobs: int | None = None, max_queue: int = 64,
                 max_batch: int = 16, cache: ArtifactCache | None = None) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.max_queue = max_queue
        self.max_batch = max_batch
        self.cache = cache if cache is not None else ArtifactCache()
        self._pmap = ParallelMap(jobs)
        self._queue: asyncio.Queue[Job] = asyncio.Queue(maxsize=max_queue)
        self._gate = asyncio.Event()
        self._gate.set()
        self._consumer: asyncio.Task | None = None
        self._draining = False
        # counters (written on the event loop / batch thread, read anywhere)
        self.submitted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.batches = 0
        self.largest_batch = 0
        self.queue_high_water = 0
        self.canonicalize_stats: dict | None = None
        self.artifact_stats: dict | None = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        if self._consumer is None:
            self._consumer = asyncio.get_running_loop().create_task(
                self._consume_forever())

    async def drain(self) -> None:
        """Finish every accepted job, then stop the consumer."""
        self._draining = True
        await self._queue.join()
        # Claim the consumer slot before awaiting: a second concurrent
        # drain() (SIGTERM racing an explicit shutdown) must see the slot
        # already empty instead of cancelling/awaiting the same task after
        # this coroutine resumed and the field went stale.
        consumer, self._consumer = self._consumer, None
        if consumer is not None:
            consumer.cancel()
            try:
                await consumer
            except asyncio.CancelledError:
                pass

    # -- test hooks -----------------------------------------------------

    def pause(self) -> None:
        """Hold batch consumption (queued jobs stay queued)."""
        self._gate.clear()

    def resume(self) -> None:
        self._gate.set()

    # -- submission ------------------------------------------------------

    @property
    def queued(self) -> int:
        return self._queue.qsize()

    def submit(self, job: Job) -> None:
        """Enqueue *job* or raise :class:`SchedulerFull` (maps to HTTP 429)."""
        if self._draining:
            raise SchedulerFull("scheduler is draining")
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self.rejected += 1
            raise SchedulerFull(
                f"queue is at capacity ({self.max_queue} jobs)") from None
        self.submitted += 1
        self.queue_high_water = max(self.queue_high_water, self._queue.qsize())

    # -- consumption -----------------------------------------------------

    async def _consume_forever(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            await self._gate.wait()
            batch = [job]
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            for member in batch:
                member.state = "running"
            try:
                outcomes = await loop.run_in_executor(
                    None, self._run_batch, batch)
            except Exception as exc:  # noqa: BLE001 - keep the consumer alive
                outcomes = [("error", f"batch execution failed: {exc!r}")
                            for _ in batch]
            self.batches += 1
            self.largest_batch = max(self.largest_batch, len(batch))
            for member, outcome in zip(batch, outcomes):
                if outcome[0] == "ok":
                    self.completed += 1
                else:
                    self.failed += 1
                member.resolve(outcome)
                self._queue.task_done()

    # -- batch execution (worker thread) ----------------------------------

    def _run_batch(self, batch: list[Job]) -> list[tuple[str, object]]:
        stage1 = self._pmap.map(handlers.execute_canonicalize,
                                [job.graph for job in batch])
        if self._pmap.last_stats is not None:
            self.canonicalize_stats = self._pmap.last_stats.to_dict()
        outcomes: list[tuple[str, object] | None] = [None] * len(batch)
        pending: list[tuple[int, object, dict]] = []  # (batch index, ci, keys)
        specs: list[dict] = []
        for index, (tag, value) in enumerate(stage1):
            if tag != "ok":
                outcomes[index] = ("error", value)
                continue
            ci = value
            keys, spec, hit = self._plan(batch[index], ci)
            if hit is not None:
                outcomes[index] = ("ok", (ci, hit))
                continue
            pending.append((index, ci, keys))
            specs.append(spec)
        if specs:
            stage2 = self._pmap.map(handlers.execute_artifact, specs)
            if self._pmap.last_stats is not None:
                self.artifact_stats = self._pmap.last_stats.to_dict()
            for (index, ci, keys), (tag, value) in zip(pending, stage2):
                if tag != "ok":
                    outcomes[index] = ("error", value)
                    continue
                artifact = self._install(batch[index], keys, value)
                outcomes[index] = ("ok", (ci, artifact))
        assert all(outcome is not None for outcome in outcomes)
        return outcomes  # type: ignore[return-value]

    def _plan(self, job: Job, ci) -> tuple[dict, dict | None, dict | None]:
        """Cache probe for one job: (keys, stage-2 spec, cached artifact).

        A full hit returns ``(keys, None, artifact)``; a miss returns the
        spec to compute (for samples the spec carries the publish artifact
        when only that half is cached).
        """
        request = job.request
        if isinstance(request, PublishRequest):
            key = handlers.publish_key(ci, request)
            artifact = self.cache.get(key)
            if artifact is not None:
                return {"publish": key}, None, artifact
            return {"publish": key}, handlers.publish_spec(ci, request), None
        if isinstance(request, SampleRequest):
            seed = effective_seed(request.tenant, request.seed)
            skey = handlers.sample_key(ci, request, seed)
            keys = {"sample": skey}
            artifact = self.cache.get(skey)
            if artifact is not None:
                return keys, None, artifact
            pkey = handlers.publish_key(ci, request)
            keys["publish"] = pkey
            publish_artifact = self.cache.get(pkey)
            return keys, handlers.sample_spec(ci, request, seed,
                                              publish_artifact), None
        if isinstance(request, RepublishRequest):
            rkey = handlers.republish_key(ci, request)
            keys = {"republish": rkey}
            artifact = self.cache.get(rkey)
            if artifact is not None:
                return keys, None, artifact
            pkey = handlers.publish_key(ci, request)
            keys["publish"] = pkey
            publish_artifact = self.cache.get(pkey)
            return keys, handlers.republish_spec(ci, request,
                                                 publish_artifact), None
        assert isinstance(request, AuditRequest)
        seed = effective_seed(request.tenant, request.seed)
        key = handlers.audit_key(ci, request, seed)
        artifact = self.cache.get(key)
        if artifact is not None:
            return {"audit": key}, None, artifact
        return {"audit": key}, handlers.audit_spec(ci, request, seed), None

    def _install(self, job: Job, keys: dict, result: dict) -> dict:
        """Store freshly computed artifacts; returns the response artifact."""
        request = job.request
        if isinstance(request, SampleRequest):
            if result.get("publish") is not None:
                self.cache.put(keys["publish"], result["publish"])
            self.cache.put(keys["sample"], result["sample"])
            return result["sample"]
        if isinstance(request, RepublishRequest):
            if result.get("publish") is not None:
                self.cache.put(keys["publish"], result["publish"])
            self.cache.put(keys["republish"], result["republish"])
            return result["republish"]
        key = keys.get("publish") or keys["audit"]
        self.cache.put(key, result)
        return result

    # -- reporting --------------------------------------------------------

    def stats(self) -> dict:
        payload: dict = {
            "batches": self.batches,
            "completed": self.completed,
            "failed": self.failed,
            "jobs": self._pmap.jobs,
            "largest_batch": self.largest_batch,
            "max_batch": self.max_batch,
            "max_queue": self.max_queue,
            "queue_high_water": self.queue_high_water,
            "queued": self.queued,
            "rejected": self.rejected,
            "submitted": self.submitted,
        }
        if self.canonicalize_stats is not None:
            payload["canonicalize_runstats"] = self.canonicalize_stats
        if self.artifact_stats is not None:
            payload["artifact_runstats"] = self.artifact_stats
        return dict(sorted(payload.items()))
