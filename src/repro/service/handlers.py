"""The service's compute core: picklable batch tasks + response rendering.

Execution is split exactly along the daemon's process boundary:

* **Batch tasks** (``execute_canonicalize``, ``execute_artifact``) are
  module-level functions dispatched through :class:`repro.runtime.ParallelMap`
  — they must stay picklable (lint rule PAR001) and pure: every input
  arrives in the task payload, results are tagged ``("ok", value)`` /
  ``("error", message)`` so one poisoned request cannot abort a whole batch.
  Artifacts are computed in *canonical* vertex space and are plain
  JSON-serialisable dicts (the cache may spill them to disk).

* **Response builders** (``build_publish_lines`` & co) run on the event
  loop: they relabel a canonical artifact back into the requester's vertex
  ids (:meth:`repro.service.canon.CanonicalInput.map_back`) and render the
  NDJSON/JSON payloads. They are pure functions of (request, artifact), so
  response bytes do not depend on which tenant warmed the cache, on arrival
  order, or on worker count.

Cache keys (content addressing):

* ``publish:<digest>:k=..:method=..:copy_unit=..``
* ``sample:<digest>:<publish params>:count=..:strategy=..:seed=<effective>``
* ``audit:<digest>:measure=..:target=<canonical id>`` (hierarchy model)
* ``audit:<digest>:model=..:ell=..`` ((k,l) sweep) /
  ``:attackers=..:target=..`` (targeted (k,l)) /
  ``model=sybil:targets=..:sybils=..:k=..:seed=<effective>`` (the sybil
  plant is seeded, so like samples its artifact stays tenant-private)
* ``republish:<digest>:<publish params>:engine=..:delta=<canonical token>``

``<digest>`` is the certificate digest (isomorphism-invariant), so
isomorphic inputs from any tenant share publish/audit artifacts; sample keys
additionally carry the tenant-namespaced effective seed, keeping sample
randomness private to a tenant while still sharing the expensive backbone
work through the publish artifact. Republish keys encode the delta in
canonical space (old endpoints through the canonical labeling, new vertices
by their rank), so isomorphic histories share the sequential artifact, and
the cached release-0 publish artifact is threaded through the delta path
exactly like the sample endpoint threads it through the samplers.
"""

from __future__ import annotations

import hashlib
import io

from repro.attacks.adjacency import kl_anonymity_report, kl_candidate_set
from repro.attacks.reidentify import simulate_attack
from repro.attacks.sybil import sybil_attack
from repro.core.anonymize import anonymize
from repro.core.publication import PublicationBuffers, save_publication_triple
from repro.core.republish import GraphDelta, republish_published
from repro.core.sampling import sample_many
from repro.graphs.graph import Graph
from repro.graphs.io import write_edge_list
from repro.graphs.partition import Partition
from repro.service.canon import CanonicalInput, canonicalize
from repro.service.protocol import (
    AuditRequest,
    PublishRequest,
    RepublishRequest,
    SampleRequest,
)

#: edge lines per streamed NDJSON chunk of a publication body
EDGE_CHUNK_LINES = 500


# ---------------------------------------------------------------------------
# batch tasks (module level, picklable, error-tagged)
# ---------------------------------------------------------------------------

def execute_canonicalize(graph: Graph) -> tuple[str, object]:
    """Stage 1: input graph -> :class:`CanonicalInput` (the expensive search)."""
    try:
        return "ok", canonicalize(graph)
    except Exception as exc:  # noqa: BLE001 - tagged and surfaced per job
        return "error", f"canonicalization failed: {exc}"


def execute_artifact(spec: dict) -> tuple[str, object]:
    """Stage 2: cache-miss artifact computation in canonical space."""
    try:
        kind = spec["kind"]
        if kind == "publish":
            return "ok", _compute_publish(spec)
        if kind == "sample":
            return "ok", _compute_sample(spec)
        if kind == "attack-audit":
            return "ok", _compute_audit(spec)
        if kind == "republish":
            return "ok", _compute_republish(spec)
        return "error", f"unknown artifact kind {kind!r}"
    except Exception as exc:  # noqa: BLE001 - tagged and surfaced per job
        return "error", f"{spec.get('kind', '?')} computation failed: {exc}"


def _canonical_graph(spec: dict) -> Graph:
    return Graph.from_edges(
        (tuple(edge) for edge in spec["edges"]), vertices=range(spec["n"]))


def _compute_publish(spec: dict) -> dict:
    graph = _canonical_graph(spec)
    result = anonymize(graph, spec["k"], method=spec["method"],
                       copy_unit=spec["copy_unit"])
    return {
        "cells": [sorted(cell) for cell in result.partition.cells],
        "edges": [list(edge) for edge in result.graph.sorted_edges()],
        "edges_added": result.edges_added,
        "k": result.k,
        "copy_unit": result.copy_unit,
        "method": spec["method"],
        "original_n": result.original_n,
        "vertex_ids": sorted(result.graph.vertices()),
        "vertices_added": result.vertices_added,
    }


def _compute_sample(spec: dict) -> dict:
    publish = spec.get("publish_artifact")
    computed_publish = None
    if publish is None:
        publish = _compute_publish(spec)
        computed_publish = publish
    graph = Graph.from_edges(
        (tuple(edge) for edge in publish["edges"]),
        vertices=publish["vertex_ids"])
    partition = Partition([list(cell) for cell in publish["cells"]])
    # jobs=1: this already runs inside a worker of the scheduler's pool;
    # nesting pools would oversubscribe without changing any result.
    samples = sample_many(graph, partition, publish["original_n"],
                          spec["count"], strategy=spec["strategy"],
                          rng=spec["seed"], jobs=1)
    return {
        "publish": computed_publish,
        "sample": {
            "count": spec["count"],
            "published_vertex_ids": list(publish["vertex_ids"]),
            "samples": [
                {"edges": [list(e) for e in s.sorted_edges()],
                 "vertices": sorted(s.vertices())}
                for s in samples
            ],
            "strategy": spec["strategy"],
        },
    }


def _compute_republish(spec: dict) -> dict:
    """Sequential release in canonical space, reusing the publish artifact.

    Delta endpoints ``>= 0`` are canonical input ids; negative values encode
    the delta's new vertices by rank (``-(rank+1)``) — they are resolved to
    concrete fresh ids only here, once the release-0 vertex space is known.
    """
    publish = spec.get("publish_artifact")
    computed_publish = None
    if publish is None:
        publish = _compute_publish(spec)
        computed_publish = publish
    previous_graph = Graph.from_edges(
        (tuple(edge) for edge in publish["edges"]),
        vertices=publish["vertex_ids"])
    previous_partition = Partition([list(cell) for cell in publish["cells"]])
    base = max(publish["vertex_ids"]) + 1

    def decode(end: int) -> int:
        return end if end >= 0 else base + (-end - 1)

    delta = GraphDelta(
        range(base, base + spec["delta_count"]),
        [(decode(u), decode(v)) for u, v in spec["delta_edges"]])
    result = republish_published(
        previous_graph, previous_partition, publish["original_n"], delta,
        spec["k"], method=spec["method"], copy_unit=spec["copy_unit"],
        engine=spec["engine"])
    return {
        "publish": computed_publish,
        "republish": {
            "cells": [sorted(cell) for cell in result.partition.cells],
            "closure_edges": result.closure_edges,
            "copy_unit": result.copy_unit,
            "delta_count": spec["delta_count"],
            "edges": [list(edge) for edge in result.graph.sorted_edges()],
            "edges_added": result.edges_added,
            "engine": result.engine,
            "k": result.k,
            "method": result.method,
            "original_n": result.original_n,
            "publish_n": base,
            "vertex_ids": sorted(result.graph.vertices()),
            "vertices_added": result.vertices_added,
        },
    }


def _compute_audit(spec: dict) -> dict:
    graph = _canonical_graph(spec)
    model = spec.get("model", "hierarchy")
    if model == "hierarchy":
        outcome = simulate_attack(graph, spec["target"], spec["measure"],
                                  jobs=1)
        return {
            "candidates": sorted(outcome.candidates),
            "measure": spec["measure"],
            "model": "hierarchy",
            "observed": repr(outcome.observed_value),
            "success_probability": outcome.success_probability,
        }
    if model in ("adjacency", "multiset"):
        if spec["attackers"]:
            attackers = tuple(spec["attackers"])
            located = kl_candidate_set(graph, attackers, spec["target"],
                                       kind=model, located=True)
            unlocated = kl_candidate_set(graph, attackers, spec["target"],
                                         kind=model, located=False)
            return {
                "attackers": list(attackers),
                "candidates": list(unlocated),
                "ell": len(attackers),
                "located_candidates": list(located),
                "model": model,
                "target": spec["target"],
            }
        report = kl_anonymity_report(graph, spec["ell"], kind=model, jobs=1)
        return {
            "anonymity": report.anonymity,
            "attackers": list(report.attackers),
            "ell": report.ell,
            "model": model,
            "n_subsets": report.n_subsets,
            "target": None,
            "vacuous": report.vacuous,
        }
    outcome = sybil_attack(graph, list(spec["targets"]),
                           publisher="ksymmetry", k=spec["k"],
                           rng=spec["seed"], n_sybils=spec["sybils"] or None,
                           jobs=1)
    return {
        "k": spec["k"],
        "model": "sybil",
        "recoveries": len(outcome.recoveries),
        "reports": [
            {"anonymity": report.anonymity,
             "candidates": list(report.candidates),
             "exposed": report.exposed,
             "re_identified": report.re_identified,
             "target": report.target}
            for report in outcome.reports
        ],
        "sybils": outcome.plan.n_sybils,
    }


# ---------------------------------------------------------------------------
# cache planning (runs in the scheduler's batch thread)
# ---------------------------------------------------------------------------

_ParamsRequest = PublishRequest | SampleRequest | RepublishRequest


def publish_key(ci: CanonicalInput, request: _ParamsRequest) -> str:
    return f"publish:{ci.digest}:{request.params.cache_token()}"


def sample_key(ci: CanonicalInput, request: SampleRequest, seed: int) -> str:
    return (f"sample:{ci.digest}:{request.params.cache_token()}"
            f":count={request.count}:strategy={request.strategy}:seed={seed}")


def audit_key(ci: CanonicalInput, request: AuditRequest, seed: int) -> str:
    """Cache key for an attack-audit, in canonical vertex space per model.

    ``seed`` is the tenant-effective seed; only the sybil model keys on it
    (its plant is seeded), so deterministic models stay shareable across
    tenants while sybil artifacts remain tenant-private.
    """
    labeling = ci.labeling()
    if request.model == "hierarchy":
        target = labeling[request.target]
        return f"audit:{ci.digest}:measure={request.measure}:target={target}"
    if request.model in ("adjacency", "multiset"):
        if request.attackers:
            attackers = ",".join(str(labeling[a]) for a in request.attackers)
            return (f"audit:{ci.digest}:model={request.model}"
                    f":attackers={attackers}:target={labeling[request.target]}")
        return f"audit:{ci.digest}:model={request.model}:ell={request.ell}"
    targets = ",".join(
        str(t) for t in sorted(labeling[t] for t in request.targets))
    return (f"audit:{ci.digest}:model=sybil:targets={targets}"
            f":sybils={request.sybils}:k={request.k}:seed={seed}")


def _canonical_delta_edges(
    ci: CanonicalInput, request: RepublishRequest,
) -> list[list[int]]:
    """The delta's edges in canonical space, sorted.

    Published endpoints go through the canonical labeling; the delta's own
    new vertices are encoded by rank as ``-(rank+1)`` — a labeling-free
    encoding, so isomorphic (graph, delta) submissions from different vertex
    spaces produce the same value.
    """
    labeling = ci.labeling()
    rank = {v: r for r, v in enumerate(request.delta_vertices)}

    def encode(end: int) -> int:
        return labeling[end] if end in labeling else -(rank[end] + 1)

    return sorted(
        sorted([encode(u), encode(v)]) for u, v in request.delta_edges)


def republish_key(ci: CanonicalInput, request: RepublishRequest) -> str:
    token = hashlib.sha256(
        repr((len(request.delta_vertices),
              _canonical_delta_edges(ci, request))).encode("utf-8"),
    ).hexdigest()[:16]
    return (f"republish:{ci.digest}:{request.params.cache_token()}"
            f":engine={request.engine}:delta={token}")


def publish_spec(ci: CanonicalInput, request: _ParamsRequest) -> dict:
    return {
        "kind": "publish",
        "edges": list(ci.edges),
        "n": ci.n,
        "k": request.params.k,
        "method": request.params.method,
        "copy_unit": request.params.copy_unit,
    }


def sample_spec(ci: CanonicalInput, request: SampleRequest, seed: int,
                publish_artifact: dict | None) -> dict:
    spec = publish_spec(ci, request)
    spec.update({
        "kind": "sample",
        "count": request.count,
        "strategy": request.strategy,
        "seed": seed,
        "publish_artifact": publish_artifact,
    })
    return spec


def republish_spec(ci: CanonicalInput, request: RepublishRequest,
                   publish_artifact: dict | None) -> dict:
    spec = publish_spec(ci, request)
    spec.update({
        "kind": "republish",
        "engine": request.engine,
        "delta_count": len(request.delta_vertices),
        "delta_edges": _canonical_delta_edges(ci, request),
        "publish_artifact": publish_artifact,
    })
    return spec


def audit_spec(ci: CanonicalInput, request: AuditRequest, seed: int) -> dict:
    labeling = ci.labeling()
    spec = {
        "kind": "attack-audit",
        "edges": list(ci.edges),
        "n": ci.n,
        "model": request.model,
    }
    if request.model == "hierarchy":
        spec.update({"measure": request.measure,
                     "target": labeling[request.target]})
    elif request.model in ("adjacency", "multiset"):
        spec.update({
            "attackers": [labeling[a] for a in request.attackers],
            "ell": request.ell,
            "target": (labeling[request.target]
                       if request.attackers else None),
        })
    else:
        spec.update({
            "k": request.k,
            "seed": seed,
            "sybils": request.sybils,
            "targets": sorted(labeling[t] for t in request.targets),
        })
    return spec


# ---------------------------------------------------------------------------
# response rendering (event loop; pure in (request, artifact))
# ---------------------------------------------------------------------------

def _chunked_text(lines_text: str, per_chunk: int) -> list[str]:
    lines = lines_text.splitlines(keepends=True)
    return ["".join(lines[i:i + per_chunk])
            for i in range(0, len(lines), per_chunk)] or [""]


def build_publish_lines(ci: CanonicalInput, artifact: dict) -> list[dict]:
    """NDJSON payload of a publish response, in the requester's vertex ids."""
    mapping = ci.map_back(list(artifact["vertex_ids"]))
    graph = Graph.from_edges(
        ((mapping[u], mapping[v]) for u, v in artifact["edges"]),
        vertices=(mapping[w] for w in artifact["vertex_ids"]))
    partition = Partition(
        [sorted(mapping[w] for w in cell) for cell in artifact["cells"]])
    buffers = PublicationBuffers.in_memory()
    save_publication_triple(graph, partition, artifact["original_n"], buffers,
                            extra={
                                "k": artifact["k"],
                                "copy_unit": artifact["copy_unit"],
                                "vertices_added": artifact["vertices_added"],
                                "edges_added": artifact["edges_added"],
                            })
    edges_text, partition_text, meta_text = buffers.texts()
    lines: list[dict] = [{
        "digest": ci.digest,
        "event": "meta",
        "text": meta_text,
    }, {
        "event": "partition",
        "text": partition_text,
    }]
    chunks = _chunked_text(edges_text, EDGE_CHUNK_LINES)
    for index, chunk in enumerate(chunks):
        lines.append({"chunk": index, "chunks": len(chunks),
                      "event": "edges", "text": chunk})
    lines.append({"event": "end", "lines": len(lines) + 1})
    return lines


def build_republish_lines(ci: CanonicalInput, request: RepublishRequest,
                          artifact: dict) -> list[dict]:
    """NDJSON payload of a republish response, id-stable with /v1/publish.

    Three id classes in the canonical artifact:

    * release-0 published ids (``< publish_n``) map exactly as
      :func:`build_publish_lines` maps them — a client composing this
      response with its earlier publish response sees the *same* release-0
      vertex ids, which is what makes the two-release history composable;
    * the delta's new vertices (``publish_n .. publish_n+delta_count-1``)
      keep the requester's own delta ids, by rank;
    * release-1 growth copies get fresh ids above everything already used.
    """
    base = artifact["publish_n"]
    delta_count = artifact["delta_count"]
    release0 = [w for w in artifact["vertex_ids"] if w < base]
    mapping = ci.map_back(release0)
    collisions = set(request.delta_vertices) & set(mapping.values())
    if collisions:
        raise ValueError(
            f"delta vertex ids {sorted(collisions)} collide with release-0 "
            "copy ids; pick delta ids above the published graph's vertex ids")
    for rank, requester_id in enumerate(request.delta_vertices):
        mapping[base + rank] = requester_id
    fresh = max(mapping.values(), default=-1) + 1
    growth = sorted(
        w for w in artifact["vertex_ids"] if w >= base + delta_count)
    for rank, w in enumerate(growth):
        mapping[w] = fresh + rank
    graph = Graph.from_edges(
        ((mapping[u], mapping[v]) for u, v in artifact["edges"]),
        vertices=(mapping[w] for w in artifact["vertex_ids"]))
    partition = Partition(
        [sorted(mapping[w] for w in cell) for cell in artifact["cells"]])
    buffers = PublicationBuffers.in_memory()
    save_publication_triple(graph, partition, artifact["original_n"], buffers,
                            extra={
                                "k": artifact["k"],
                                "copy_unit": artifact["copy_unit"],
                                "engine": artifact["engine"],
                                "closure_edges": artifact["closure_edges"],
                                "delta_vertices": delta_count,
                                "vertices_added": artifact["vertices_added"],
                                "edges_added": artifact["edges_added"],
                            })
    edges_text, partition_text, meta_text = buffers.texts()
    lines: list[dict] = [{
        "digest": ci.digest,
        "event": "meta",
        "text": meta_text,
    }, {
        "event": "partition",
        "text": partition_text,
    }]
    chunks = _chunked_text(edges_text, EDGE_CHUNK_LINES)
    for index, chunk in enumerate(chunks):
        lines.append({"chunk": index, "chunks": len(chunks),
                      "event": "edges", "text": chunk})
    lines.append({"event": "end", "lines": len(lines) + 1})
    return lines


def build_sample_lines(ci: CanonicalInput, artifact: dict) -> list[dict]:
    """NDJSON payload of a sample response: one line per sample graph."""
    mapping = ci.map_back(list(artifact["published_vertex_ids"]))
    lines: list[dict] = [{
        "count": artifact["count"],
        "digest": ci.digest,
        "event": "meta",
        "strategy": artifact["strategy"],
    }]
    for index, sample in enumerate(artifact["samples"]):
        graph = Graph.from_edges(
            ((mapping[u], mapping[v]) for u, v in sample["edges"]),
            vertices=(mapping[w] for w in sample["vertices"]))
        buffer = io.StringIO()
        write_edge_list(graph, buffer)
        lines.append({"event": "sample", "index": index,
                      "text": buffer.getvalue()})
    lines.append({"event": "end", "lines": len(lines) + 1})
    return lines


def build_audit_obj(ci: CanonicalInput, artifact: dict) -> dict:
    """JSON payload of an attack-audit response (any model)."""
    model = artifact.get("model", "hierarchy")
    if model == "hierarchy":
        candidates = sorted(ci.inverse[w] for w in artifact["candidates"])
        return {
            "candidate_count": len(candidates),
            "candidates": candidates,
            "digest": ci.digest,
            "measure": artifact["measure"],
            "model": model,
            "observed": artifact["observed"],
            "success_probability": artifact["success_probability"],
        }
    if model in ("adjacency", "multiset"):
        if artifact["target"] is not None:
            candidates = sorted(ci.inverse[w] for w in artifact["candidates"])
            return {
                "attackers": [ci.inverse[w] for w in artifact["attackers"]],
                "candidate_count": len(candidates),
                "candidates": candidates,
                "digest": ci.digest,
                "ell": artifact["ell"],
                "located_candidates": sorted(
                    ci.inverse[w] for w in artifact["located_candidates"]),
                "model": model,
                "target": ci.inverse[artifact["target"]],
            }
        return {
            "anonymity": artifact["anonymity"],
            "attackers": [ci.inverse[w] for w in artifact["attackers"]],
            "digest": ci.digest,
            "ell": artifact["ell"],
            "model": model,
            "n_subsets": artifact["n_subsets"],
            "vacuous": artifact["vacuous"],
        }
    # Sybil candidates live in the *published* graph: canonical inputs plus
    # sybil/copy vertices the pipeline inserted, so map_back mints fresh
    # request-side ids for the latter exactly like the publish payload does.
    seen = sorted({w for report in artifact["reports"]
                   for w in report["candidates"]}
                  | {report["target"] for report in artifact["reports"]})
    mapping = ci.map_back(seen)
    reports = [{
        "anonymity": report["anonymity"],
        "candidates": sorted(mapping[w] for w in report["candidates"]),
        "exposed": report["exposed"],
        "re_identified": report["re_identified"],
        "target": mapping[report["target"]],
    } for report in artifact["reports"]]
    return {
        "digest": ci.digest,
        "exposed_targets": sorted(
            report["target"] for report in reports if report["exposed"]),
        "k": artifact["k"],
        "model": "sybil",
        "recoveries": artifact["recoveries"],
        "reports": reports,
        "sybils": artifact["sybils"],
    }
