"""Minimal HTTP/1.1 layer over ``asyncio`` streams (stdlib only).

``ksymmetryd`` deliberately avoids ``http.server`` (thread-per-request,
blocking) and any third-party framework: the daemon needs exactly four
things — request parsing with bounded bodies, keep-alive, JSON responses
with deterministic bytes, and chunked NDJSON streaming — and this module
provides just those on top of ``asyncio.start_server``.

Determinism note: response *bodies* are rendered with
``json.dumps(..., sort_keys=True, separators=(",", ":"))`` so that equal
payload objects always serialise to equal bytes; this is what the service's
per-tenant byte-reproducibility guarantee rests on. Headers carry no
timestamps (no ``Date`` header) for the same reason.
"""

from __future__ import annotations

import json
from asyncio import IncompleteReadError, LimitOverrunError, StreamReader, StreamWriter
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

#: request head (request line + headers) size bound
MAX_HEAD_BYTES = 32 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def dumps_canonical(payload: object) -> str:
    """The service's single JSON serialisation: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class HTTPError(Exception):
    """Protocol-level failure that maps straight to an error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HTTPRequest:
    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> object:
        if not self.body:
            raise HTTPError(400, "empty request body where JSON was expected")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HTTPError(400, f"request body is not valid JSON: {exc}") from exc


async def read_request(reader: StreamReader, *, max_body: int) -> HTTPRequest | None:
    """Parse one request off *reader*; ``None`` on a clean connection close."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HTTPError(400, "connection closed mid-request") from exc
    except LimitOverrunError as exc:
        raise HTTPError(431, "request head exceeds the size limit") from exc
    if len(head) > MAX_HEAD_BYTES:
        raise HTTPError(431, "request head exceeds the size limit")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HTTPError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HTTPError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError as exc:
            raise HTTPError(400, f"bad Content-Length: {raw_length!r}") from exc
        if length < 0:
            raise HTTPError(400, f"bad Content-Length: {raw_length!r}")
        if length > max_body:
            raise HTTPError(413, f"request body of {length} bytes exceeds the "
                                 f"limit of {max_body}")
        body = await reader.readexactly(length)
    elif headers.get("transfer-encoding"):
        raise HTTPError(400, "chunked request bodies are not supported; send "
                             "Content-Length")
    return HTTPRequest(
        method=method.upper(),
        path=unquote(split.path),
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


class ResponseWriter:
    """Writes responses for one request; JSON bodies or chunked NDJSON."""

    def __init__(self, writer: StreamWriter, *, keep_alive: bool = True) -> None:
        self._writer = writer
        self._keep_alive = keep_alive
        self._streaming = False
        self.started = False

    def _head(self, status: int, content_type: str,
              extra_headers: dict[str, str] | None) -> bytearray:
        reason = _REASONS.get(status, "Unknown")
        head = bytearray(f"HTTP/1.1 {status} {reason}\r\n".encode("latin-1"))
        head += f"Content-Type: {content_type}\r\n".encode("latin-1")
        connection = "keep-alive" if self._keep_alive else "close"
        head += f"Connection: {connection}\r\n".encode("latin-1")
        for name, value in sorted((extra_headers or {}).items()):
            head += f"{name}: {value}\r\n".encode("latin-1")
        return head

    async def send_json(self, status: int, payload: object,
                        extra_headers: dict[str, str] | None = None) -> None:
        body = dumps_canonical(payload).encode("utf-8") + b"\n"
        head = self._head(status, "application/json", extra_headers)
        head += f"Content-Length: {len(body)}\r\n\r\n".encode("latin-1")
        self.started = True
        self._writer.write(bytes(head) + body)
        await self._writer.drain()

    async def send_error(self, status: int, message: str,
                         extra_headers: dict[str, str] | None = None) -> None:
        await self.send_json(status, {"error": message}, extra_headers)

    # -- chunked NDJSON streaming --------------------------------------

    async def start_ndjson(self, status: int = 200,
                           extra_headers: dict[str, str] | None = None) -> None:
        head = self._head(status, "application/x-ndjson", extra_headers)
        head += b"Transfer-Encoding: chunked\r\n\r\n"
        self.started = True
        self._streaming = True
        self._writer.write(bytes(head))
        await self._writer.drain()

    async def send_line(self, payload: object) -> None:
        if not self._streaming:
            raise RuntimeError("send_line before start_ndjson")
        data = dumps_canonical(payload).encode("utf-8") + b"\n"
        self._writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")
        await self._writer.drain()

    async def finish_ndjson(self) -> None:
        if not self._streaming:
            raise RuntimeError("finish_ndjson before start_ndjson")
        self._streaming = False
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()
