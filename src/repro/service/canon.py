"""Canonical-form bridging: content keys plus exact per-request relabeling.

The cache must hit when two tenants submit *isomorphic* graphs, yet every
response must use the submitting tenant's own vertex ids. The resolution:

1. canonicalise the input once (one individualization–refinement search
   yields both the certificate — hashed into the cache key — and the
   canonical labeling);
2. run every expensive artifact computation (anonymize, backbone, sampling,
   candidate sets) on the **canonical graph**, whose vertex set is
   ``0..n-1`` and whose edge set is identical for all members of the
   isomorphism class — this is what gets cached;
3. relabel the artifact back through the request's own labeling when the
   response is rendered. Vertices the anonymizer *inserted* (canonical ids
   outside ``0..n-1``) are mapped to ``max(request ids) + 1, + 2, ...`` in
   insertion-rank order, which is collision-free and a pure function of the
   request.

Step 3 is cheap (linear in the artifact) and step 2 is the expensive part,
so isomorphic resubmissions skip everything but one canonical search — while
responses stay byte-identical per request whatever the cache contains.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.graphs.graph import Graph
from repro.isomorphism.canonical import certificate_with_labeling


@dataclass(frozen=True)
class CanonicalInput:
    """One request graph reduced to its isomorphism class + the way back."""

    #: hex SHA-256 of the canonical certificate (isomorphism-invariant)
    digest: str
    #: number of vertices
    n: int
    #: canonical edge list over vertex ids 0..n-1, sorted
    edges: tuple[tuple[int, int], ...]
    #: canonical id -> the request's own vertex id
    inverse: tuple[int, ...]
    #: first id guaranteed free in the request's vertex space
    fresh_base: int

    def labeling(self) -> dict[int, int]:
        """Request vertex id -> canonical id (inverse of ``inverse``)."""
        return {v: i for i, v in enumerate(self.inverse)}

    def canonical_graph(self) -> Graph:
        """Rebuild the canonical graph (isolated vertices included)."""
        return Graph.from_edges(self.edges, vertices=range(self.n))

    def map_back(self, canonical_ids: list[int]) -> dict[int, int]:
        """Canonical artifact ids -> request ids, inserted ids made fresh.

        *canonical_ids* is every vertex id appearing in the artifact; ids
        ``>= n`` were inserted by the anonymizer and are assigned fresh
        request-side ids deterministically by sorted order.
        """
        mapping: dict[int, int] = {}
        inserted = sorted({w for w in canonical_ids if not 0 <= w < self.n})
        for rank, w in enumerate(inserted):
            mapping[w] = self.fresh_base + rank
        for w in canonical_ids:
            if 0 <= w < self.n:
                mapping[w] = self.inverse[w]
        return mapping


def canonicalize(graph: Graph) -> CanonicalInput:
    """Canonical form of *graph*; vertices must be ints (service contract)."""
    cert, labeling = certificate_with_labeling(graph)
    digest = hashlib.sha256(repr(cert).encode("utf-8")).hexdigest()
    inverse: list[int] = [0] * graph.n
    for v, i in labeling.items():
        inverse[i] = v
    edges = tuple(sorted(
        (labeling[u], labeling[v]) if labeling[u] < labeling[v]
        else (labeling[v], labeling[u])
        for u, v in graph.edges()
    ))
    fresh_base = max(inverse) + 1 if inverse else 0
    return CanonicalInput(digest=digest, n=graph.n, edges=edges,
                          inverse=tuple(inverse), fresh_base=fresh_base)
