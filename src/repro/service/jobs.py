"""Job objects and the daemon's bounded job registry.

A job is one accepted POST: it carries the parsed request, the graph, and an
``asyncio`` future the scheduler resolves from its batch thread. States move
``queued -> running -> done | failed``; a sync requester that stops waiting
marks the job ``timeout`` (the computation still completes and the result
stays pollable under ``GET /v1/jobs/<id>``).

Job ids are per-daemon sequence numbers — they identify, they do not
reproduce. Response *bodies* of the publish/sample/audit endpoints never
embed a job id precisely so that bodies stay a pure function of the request;
the id travels in the ``X-Job-Id`` header and the jobs endpoint instead.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict

from repro.service.protocol import Request

_TERMINAL = ("done", "failed", "timeout")


class Job:
    """One accepted request moving through the scheduler."""

    __slots__ = ("id", "kind", "tenant", "graph", "request", "state", "error",
                 "future", "rendered", "result_lines", "result_obj")

    def __init__(self, job_id: str, request: Request, graph) -> None:
        self.id = job_id
        self.kind = request.kind
        self.tenant = request.tenant
        self.graph = graph
        self.request = request
        self.state = "queued"
        self.error: str | None = None
        #: resolved by the scheduler: ("ok", (ci, artifact)) | ("error", msg)
        self.future: asyncio.Future = asyncio.get_running_loop().create_future()
        #: set once the response payload has been rendered from the artifact
        self.rendered = asyncio.Event()
        self.result_lines: list[dict] | None = None
        self.result_obj: dict | None = None

    def resolve(self, outcome: tuple[str, object]) -> None:
        """Called on the event loop once the batch thread finishes this job."""
        if not self.future.done():
            self.future.set_result(outcome)

    @property
    def finished(self) -> bool:
        return self.state in _TERMINAL

    def descriptor(self) -> dict:
        payload: dict = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "tenant": self.tenant,
        }
        if self.state == "done":
            if self.result_lines is not None:
                payload["result"] = self.result_lines
            elif self.result_obj is not None:
                payload["result"] = self.result_obj
        if self.error is not None:
            payload["error"] = self.error
        return payload


class JobRegistry:
    """Creates jobs and keeps a bounded history of terminal ones."""

    def __init__(self, keep_jobs: int = 256) -> None:
        if keep_jobs < 1:
            raise ValueError(f"keep_jobs must be >= 1, got {keep_jobs}")
        self.keep_jobs = keep_jobs
        self._jobs: OrderedDict[str, Job] = OrderedDict()
        self._next = 0
        self.created = 0

    def create(self, request: Request, graph) -> Job:
        self._next += 1
        self.created += 1
        job = Job(f"job-{self._next:08d}", request, graph)
        self._jobs[job.id] = job
        self._prune()
        return job

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def _prune(self) -> None:
        if len(self._jobs) <= self.keep_jobs:
            return
        for job_id in list(self._jobs):
            if len(self._jobs) <= self.keep_jobs:
                break
            if self._jobs[job_id].finished:
                del self._jobs[job_id]

    def stats(self) -> dict[str, int]:
        states = {"done": 0, "failed": 0, "queued": 0, "running": 0, "timeout": 0}
        for job in self._jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        payload = {"created": self.created, "tracked": len(self._jobs)}
        payload.update(states)
        return dict(sorted(payload.items()))
