"""Blocking HTTP client for ksymmetryd (stdlib ``http.client`` only).

Used by the end-to-end tests and the load generator; also a reasonable
reference for talking to the daemon from any language: plain JSON POSTs,
chunked NDJSON responses (``http.client`` de-chunks transparently).

One :class:`ServiceClient` holds one keep-alive connection and is **not**
thread-safe — the load generator gives each worker thread its own client,
mirroring how independent tenants would connect.
"""

from __future__ import annotations

import http.client
import json
import time


class ServiceError(Exception):
    """Non-2xx response from the daemon."""

    def __init__(self, status: int, message: str,
                 headers: dict[str, str] | None = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.headers = headers or {}


class ServiceClient:
    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # -- transport ------------------------------------------------------

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def request_raw(self, method: str, path: str, payload: dict | None = None,
                    ) -> tuple[int, dict[str, str], bytes]:
        """One request; returns (status, lower-cased headers, raw body).

        Retries once on a stale keep-alive connection (the daemon may have
        closed it between requests), never on a fresh one.
        """
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
            except (http.client.HTTPException, ConnectionError, BrokenPipeError):
                self.close()
                if attempt:
                    raise
                continue
            return (response.status,
                    {k.lower(): v for k, v in response.getheaders()},
                    data)
        raise AssertionError("unreachable")  # pragma: no cover

    def _json(self, method: str, path: str,
              payload: dict | None = None) -> dict:
        status, headers, data = self.request_raw(method, path, payload)
        parsed = json.loads(data.decode("utf-8")) if data else {}
        if status >= 400:
            message = parsed.get("error", "") if isinstance(parsed, dict) else ""
            raise ServiceError(status, message or data.decode("utf-8", "replace"),
                               headers)
        return parsed

    def _ndjson(self, path: str, payload: dict) -> list[dict]:
        status, headers, data = self.request_raw("POST", path, payload)
        text = data.decode("utf-8")
        if status >= 400:
            try:
                message = json.loads(text).get("error", text)
            except json.JSONDecodeError:
                message = text
            raise ServiceError(status, message, headers)
        return [json.loads(line) for line in text.splitlines() if line]

    # -- endpoints ------------------------------------------------------

    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def metrics(self) -> dict:
        return self._json("GET", "/v1/metrics")

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def publish(self, edges_text: str, *, k: int = 2, tenant: str = "public",
                seed: int = 0, method: str = "exact", copy_unit: str = "orbit",
                run_async: bool = False) -> list[dict] | dict:
        payload = {"edges": edges_text, "k": k, "tenant": tenant, "seed": seed,
                   "method": method, "copy_unit": copy_unit}
        if run_async:
            payload["async"] = True
            return self._json("POST", "/v1/publish", payload)
        return self._ndjson("/v1/publish", payload)

    def sample(self, edges_text: str, *, k: int = 2, count: int = 1,
               strategy: str = "approximate", tenant: str = "public",
               seed: int = 0, method: str = "exact", copy_unit: str = "orbit",
               run_async: bool = False) -> list[dict] | dict:
        payload = {"edges": edges_text, "k": k, "count": count,
                   "strategy": strategy, "tenant": tenant, "seed": seed,
                   "method": method, "copy_unit": copy_unit}
        if run_async:
            payload["async"] = True
            return self._json("POST", "/v1/sample", payload)
        return self._ndjson("/v1/sample", payload)

    def republish(self, edges_text: str, *, add_vertices: list[int],
                  add_edges: list[list[int]] | None = None, k: int = 2,
                  engine: str = "incremental", tenant: str = "public",
                  seed: int = 0, method: str = "exact",
                  copy_unit: str = "orbit",
                  run_async: bool = False) -> list[dict] | dict:
        """Sequential release: *edges_text* is the original release-0 input;
        the delta lists new vertices and insertions-only edges."""
        payload = {"edges": edges_text, "k": k, "engine": engine,
                   "tenant": tenant, "seed": seed, "method": method,
                   "copy_unit": copy_unit,
                   "delta": {"add_vertices": list(add_vertices),
                             "add_edges": [list(e) for e in add_edges or []]}}
        if run_async:
            payload["async"] = True
            return self._json("POST", "/v1/republish", payload)
        return self._ndjson("/v1/republish", payload)

    def attack_audit(self, edges_text: str, target: int | None = None, *,
                     model: str = "hierarchy", measure: str = "combined",
                     ell: int | None = None,
                     attackers: list[int] | None = None,
                     targets: list[int] | None = None,
                     sybils: int | None = None, k: int | None = None,
                     tenant: str = "public", seed: int = 0,
                     run_async: bool = False) -> dict:
        """Audit under any attack model; only model-relevant fields are sent
        (the protocol rejects fields that do not apply to the model)."""
        payload: dict = {"edges": edges_text, "model": model,
                         "tenant": tenant, "seed": seed}
        if model == "hierarchy":
            payload.update({"target": target, "measure": measure})
        elif model in ("adjacency", "multiset"):
            if attackers is not None:
                payload["attackers"] = list(attackers)
                payload["target"] = target
            elif ell is not None:
                payload["ell"] = ell
        else:
            payload["targets"] = list(targets or [])
            if sybils is not None:
                payload["sybils"] = sybils
            if k is not None:
                payload["k"] = k
        if run_async:
            payload["async"] = True
        return self._json("POST", "/v1/attack-audit", payload)

    def wait_for_job(self, job_id: str, *, attempts: int = 600,
                     poll_sleep: float = 0.05) -> dict:
        """Poll a job until it leaves queued/running; bounded, then raises."""
        for _ in range(attempts):
            descriptor = self.job(job_id)
            if descriptor["state"] not in ("queued", "running"):
                return descriptor
            time.sleep(poll_sleep)
        raise TimeoutError(f"job {job_id} still pending after {attempts} polls")


def publication_from_lines(lines: list[dict]) -> tuple[str, str, str]:
    """Reassemble (edges, partition, meta) texts from publish NDJSON lines."""
    meta_text = ""
    partition_text = ""
    edge_chunks: list[tuple[int, str]] = []
    for line in lines:
        event = line.get("event")
        if event == "meta":
            meta_text = line["text"]
        elif event == "partition":
            partition_text = line["text"]
        elif event == "edges":
            edge_chunks.append((line["chunk"], line["text"]))
    edges_text = "".join(text for _, text in sorted(edge_chunks))
    return edges_text, partition_text, meta_text
