"""Per-endpoint service counters surfaced by ``GET /v1/metrics``.

Latency aggregates (count/total/min/max) are measured with
:class:`repro.runtime.Stopwatch` — the library's only sanctioned timing path
(lint rule DET002) — and feed *presentation only*: nothing computed from a
clock ever reaches a response body of the publish/sample/audit endpoints.
Percentiles are deliberately left to the load generator
(``benchmarks/bench_service.py``), which owns its own clock; the daemon
keeps O(1) state per endpoint.

``snapshot`` output uses sorted keys throughout, so serialising it with the
canonical JSON encoder is byte-stable for equal counter states.
"""

from __future__ import annotations


class EndpointStats:
    __slots__ = ("requests", "ok", "client_errors", "server_errors",
                 "rejected", "timeouts", "seconds_total", "seconds_max")

    def __init__(self) -> None:
        self.requests = 0
        self.ok = 0
        self.client_errors = 0
        self.server_errors = 0
        self.rejected = 0
        self.timeouts = 0
        self.seconds_total = 0.0
        self.seconds_max = 0.0

    def observe(self, status: int, seconds: float) -> None:
        self.requests += 1
        self.seconds_total += seconds
        self.seconds_max = max(self.seconds_max, seconds)
        if status == 429:
            self.rejected += 1
        elif status == 504:
            self.timeouts += 1
        elif status >= 500:
            self.server_errors += 1
        elif status >= 400:
            self.client_errors += 1
        else:
            self.ok += 1

    def to_dict(self) -> dict:
        return dict(sorted({
            "client_errors": self.client_errors,
            "ok": self.ok,
            "rejected": self.rejected,
            "requests": self.requests,
            "seconds_max": self.seconds_max,
            "seconds_total": self.seconds_total,
            "server_errors": self.server_errors,
            "timeouts": self.timeouts,
        }.items()))


class ServiceMetrics:
    def __init__(self) -> None:
        self._endpoints: dict[str, EndpointStats] = {}

    def observe(self, endpoint: str, status: int, seconds: float) -> None:
        stats = self._endpoints.get(endpoint)
        if stats is None:
            stats = self._endpoints[endpoint] = EndpointStats()
        stats.observe(status, seconds)

    def endpoint(self, name: str) -> EndpointStats | None:
        return self._endpoints.get(name)

    def snapshot(self) -> dict:
        return {name: stats.to_dict()
                for name, stats in sorted(self._endpoints.items())}
