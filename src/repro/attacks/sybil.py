"""Active sybil-subgraph re-identification (arXiv:2007.05312).

The strongest adversary in the arena acts *before* publication: it creates
ℓ fake accounts (sybils), wires them into a recognisable internal pattern,
and befriends each target through a distinct non-empty subset of the
sybils (the target's *fingerprint*).  After the anonymized graph is
published the attack runs in two phases:

1. **recovery** — find every ordered tuple of distinct published vertices
   whose induced subgraph equals the planted internal pattern exactly
   (candidate placements of the sybil set);
2. **re-identification** — for each target, collect the published vertices
   adjacent to exactly its fingerprint subset of some recovered tuple.

Because this repo's publishers are insertions-only (both the base
``anonymize`` and ``republish`` add edges incident to new vertices only),
the planted pattern and fingerprints survive publication verbatim, so
against a naive (identity) release the attack succeeds outright.  Against
a k-symmetric release the inserted copies blur both phases; the
``check_sybil_resistance`` certificate in :mod:`repro.audit.certificates`
fails a release only when a target is *correctly* exposed with fewer than
k candidates (a misled attacker — wrong recoveries, target absent — is a
win for the publisher, not a violation).

All candidate enumeration is in lexicographic order over sorted vertices;
recovery shards by the rank-0 assignment across workers and concatenates
in root order, so results are byte-identical at any ``jobs`` value.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Hashable, Sequence
from dataclasses import dataclass
from functools import partial

from repro.graphs.graph import Graph, _sorted_if_possible
from repro.runtime import parallel_map
from repro.utils.rng import derive_seed
from repro.utils.validation import ReproError

Vertex = Hashable

PUBLISHERS = ("naive", "ksymmetry")


@dataclass(frozen=True)
class SybilPlan:
    """Everything the attacker planted (and therefore knows) pre-publication.

    ``pattern`` holds the sybil-internal edges as sorted rank pairs
    (ranks index into ``sybils``); ``fingerprints`` associates each target
    with its sorted tuple of sybil ranks.  The plan is a frozen value — it
    survives pickling into recovery workers unchanged.
    """

    sybils: tuple
    pattern: tuple[tuple[int, int], ...]
    fingerprints: tuple[tuple[Vertex, tuple[int, ...]], ...]
    seed: int

    @property
    def n_sybils(self) -> int:
        return len(self.sybils)

    @property
    def targets(self) -> tuple:
        return tuple(t for t, _ in self.fingerprints)

    def fingerprint_of(self, target: Vertex) -> tuple[int, ...]:
        for t, ranks in self.fingerprints:
            if t == target:
                return ranks
        raise ReproError(f"{target!r} is not a target of this sybil plan")


def _fresh_sybil_ids(graph: Graph, count: int) -> tuple:
    """*count* vertex ids guaranteed absent from *graph*.

    Integer graphs (the anonymizer's domain) get ``max+1, ...``; anything
    else gets ``("sybil", i)`` tuples, usable with the naive publisher.
    """
    vertices = graph.vertices()
    if vertices and all(isinstance(v, int) for v in vertices):
        base = max(vertices) + 1
        return tuple(base + i for i in range(count))
    if not vertices:
        return tuple(range(count))
    return tuple(("sybil", i) for i in range(count))


def plant_sybils(
    graph: Graph,
    targets: Sequence[Vertex],
    n_sybils: int | None = None,
    rng: int = 0,
) -> tuple[Graph, SybilPlan]:
    """Inject the sybil subgraph into a copy of *graph* before publication.

    The internal pattern is a path over the sybil ranks (keeping the
    planted subgraph connected and recognisable) plus extra seeded edges;
    each target receives a distinct non-empty fingerprint subset, drawn
    from a ``derive_seed``-keyed stream so the plant is reproducible.
    ``n_sybils`` defaults to the smallest ℓ ≥ 2 with 2^ℓ − 1 ≥ #targets.
    """
    targets = tuple(targets)
    if not targets:
        raise ReproError("sybil attack needs at least one target")
    if len(set(targets)) != len(targets):
        raise ReproError("sybil targets must be distinct")
    for t in targets:
        if t not in graph:
            raise ReproError(f"target {t!r} not in graph")
    if n_sybils is None:
        n_sybils = 2
        while 2**n_sybils - 1 < len(targets):
            n_sybils += 1
    if n_sybils < 1:
        raise ReproError(f"n_sybils must be positive, got {n_sybils}")
    if 2**n_sybils - 1 < len(targets):
        raise ReproError(
            f"{n_sybils} sybils admit only {2 ** n_sybils - 1} distinct "
            f"non-empty fingerprints, fewer than {len(targets)} targets"
        )
    rand = random.Random(derive_seed(rng, "attacks/sybil/plant"))
    pattern = {(i, i + 1) for i in range(n_sybils - 1)}
    for i in range(n_sybils):
        for j in range(i + 1, n_sybils):
            if (i, j) not in pattern and rand.random() < 0.5:
                pattern.add((i, j))
    subsets = [
        tuple(ranks)
        for size in range(1, n_sybils + 1)
        for ranks in _rank_subsets(n_sybils, size)
    ]
    rand.shuffle(subsets)
    fingerprints = tuple(
        (t, subsets[i]) for i, t in enumerate(_sorted_if_possible(list(targets)))
    )
    sybils = _fresh_sybil_ids(graph, n_sybils)
    grown = graph.copy()
    for s in sybils:
        grown.add_vertex(s)
    for i, j in sorted(pattern):
        grown.add_edge(sybils[i], sybils[j])
    for t, ranks in fingerprints:
        for i in ranks:
            grown.add_edge(t, sybils[i])
    plan = SybilPlan(
        sybils=sybils,
        pattern=tuple(sorted(pattern)),
        fingerprints=fingerprints,
        seed=rng,
    )
    return grown, plan


def _rank_subsets(n: int, size: int) -> list[tuple[int, ...]]:
    from itertools import combinations

    return [tuple(c) for c in combinations(range(n), size)]


# --------------------------------------------------------------------------
# Phase 1: recover candidate sybil placements in the published graph.
# --------------------------------------------------------------------------


def _extend_placement(
    order: Sequence[Vertex],
    masks: Sequence[int],
    pattern: frozenset,
    ell: int,
    prefix: list[int],
    out: list[tuple],
) -> None:
    """Depth-first extension of a partial rank→vertex-index assignment."""
    rank = len(prefix)
    if rank == ell:
        out.append(tuple(order[i] for i in prefix))
        return
    for cand in range(len(order)):
        if cand in prefix:
            continue
        ok = True
        for prev_rank, prev in enumerate(prefix):
            edge = bool(masks[prev] >> cand & 1)
            if edge != ((prev_rank, rank) in pattern):
                ok = False
                break
        if ok:
            prefix.append(cand)
            _extend_placement(order, masks, pattern, ell, prefix, out)
            prefix.pop()


def _recover_from_root(
    published: Graph, plan: SybilPlan, root: int
) -> list[tuple]:
    """All recovered tuples whose rank-0 vertex is ``sorted_vertices()[root]``."""
    order = published.sorted_vertices()
    index = {v: i for i, v in enumerate(order)}
    masks = [0] * len(order)
    for u, v in published.edges():
        iu, iv = index[u], index[v]
        masks[iu] |= 1 << iv
        masks[iv] |= 1 << iu
    pattern = frozenset(plan.pattern)
    out: list[tuple] = []
    _extend_placement(order, masks, pattern, plan.n_sybils, [root], out)
    return out


def recover_sybil_tuples(
    published: Graph, plan: SybilPlan, jobs: int | None = None
) -> list[tuple]:
    """Every ordered tuple of distinct vertices matching the planted pattern.

    Tuples are produced in lexicographic order over the sorted vertex list;
    *jobs* shards the search by the rank-0 assignment and the per-root
    results are concatenated in root order, so the output is identical for
    any worker count.
    """
    n = published.n
    if n < plan.n_sybils:
        return []
    roots = list(range(n))
    if jobs is None:
        shards = [_recover_from_root(published, plan, root) for root in roots]
    else:
        shards = parallel_map(partial(_recover_from_root, published, plan), roots, jobs=jobs)
    return [tup for shard in shards for tup in shard]


# --------------------------------------------------------------------------
# Phase 2: re-identify targets from their sybil fingerprints.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SybilTargetReport:
    """Re-identification outcome for one target."""

    target: Vertex
    fingerprint: tuple[int, ...]
    candidates: tuple

    @property
    def anonymity(self) -> int:
        return len(self.candidates)

    @property
    def exposed(self) -> bool:
        """The attacker's candidate set genuinely contains the target."""
        return self.target in self.candidates

    @property
    def re_identified(self) -> bool:
        return self.exposed and len(self.candidates) == 1


def reidentify_targets(
    published: Graph, plan: SybilPlan, recoveries: Sequence[tuple]
) -> list[SybilTargetReport]:
    """Fingerprint matching over every recovered placement; sorted candidates.

    A vertex u is a candidate for target t under placement X when u is
    adjacent to exactly the fingerprint subset {X[i] : i ∈ fp(t)} of X —
    the attacker knows t gained no other sybil friendships.
    """
    reports = []
    for target, ranks in plan.fingerprints:
        want = set(ranks)
        candidates: set = set()
        for placement in recoveries:
            members = set(placement)
            for u in published.vertices():
                if u in members or u in candidates:
                    continue
                nbrs = published.neighbors(u)
                got = {i for i, x in enumerate(placement) if x in nbrs}
                if got == want:
                    candidates.add(u)
        reports.append(
            SybilTargetReport(
                target=target,
                fingerprint=ranks,
                candidates=tuple(_sorted_if_possible(list(candidates))),
            )
        )
    return reports


# --------------------------------------------------------------------------
# End to end.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SybilAttackOutcome:
    """One full plant → publish → recover → re-identify run."""

    publisher: str
    k: int
    plan: SybilPlan
    recoveries: tuple[tuple, ...]
    reports: tuple[SybilTargetReport, ...]

    @property
    def exposed_targets(self) -> tuple:
        return tuple(r.target for r in self.reports if r.exposed)

    @property
    def min_exposed_anonymity(self) -> int | None:
        """Smallest candidate-set size among genuinely exposed targets."""
        sizes = [r.anonymity for r in self.reports if r.exposed]
        return min(sizes) if sizes else None

    def as_dict(self) -> dict:
        return {
            "publisher": self.publisher,
            "k": self.k,
            "sybils": list(self.plan.sybils),
            "pattern": [list(e) for e in self.plan.pattern],
            "n_recoveries": len(self.recoveries),
            "reports": [
                {
                    "target": r.target,
                    "fingerprint": list(r.fingerprint),
                    "candidates": list(r.candidates),
                    "exposed": r.exposed,
                    "re_identified": r.re_identified,
                }
                for r in self.reports
            ],
        }


def sybil_attack(
    original: Graph,
    targets: Sequence[Vertex],
    publisher: str | Callable[[Graph], Graph] = "ksymmetry",
    k: int = 2,
    rng: int = 0,
    n_sybils: int | None = None,
    jobs: int | None = None,
) -> SybilAttackOutcome:
    """Run the active attack end to end against a chosen publisher.

    ``publisher="naive"`` releases the grown graph unchanged (the
    falsifiable negative control); ``"ksymmetry"`` runs ``anonymize`` with
    threshold *k* (integer-vertex graphs only); a callable receives the
    grown graph and returns the published one.
    """
    grown, plan = plant_sybils(original, targets, n_sybils=n_sybils, rng=rng)
    if callable(publisher):
        published = publisher(grown)
        name = getattr(publisher, "__name__", "custom")
    elif publisher == "naive":
        published = grown
        name = "naive"
    elif publisher == "ksymmetry":
        from repro.core.anonymize import anonymize

        published = anonymize(grown, k).graph
        name = "ksymmetry"
    else:
        raise ReproError(
            f"unknown publisher {publisher!r}; expected a callable or one of {PUBLISHERS}"
        )
    recoveries = recover_sybil_tuples(published, plan, jobs=jobs)
    reports = reidentify_targets(published, plan, recoveries)
    return SybilAttackOutcome(
        publisher=name,
        k=k if name == "ksymmetry" else 1,
        plan=plan,
        recoveries=tuple(recoveries),
        reports=tuple(reports),
    )
