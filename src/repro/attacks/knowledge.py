"""Structural knowledge measures (paper Section 2.2).

A *measure* f assigns each vertex an isomorphism-invariant value computable
from the topology; an adversary who learns f(target) from the real world can
restrict candidates in a published graph to the vertices with the same value.
Measures induce the equivalence v ≈_f u iff f(v) = f(u) and hence a partition
V_f of the vertex set; because every measure here is isomorphism-invariant,
Orb(G) always refines V_f — the orbit partition is the limit of what any such
measure (or combination) can reveal.

Measures implemented:

* ``degree`` — deg(v);
* ``neighbor_degrees`` — Deg(v), the sorted degree sequence of v's
  neighbourhood (the paper's first combined-component);
* ``triangles`` — tri(v), triangles through v;
* ``combined`` — the paper's f(v) = (Deg(v), tri(v));
* ``neighborhood`` — the isomorphism class of the subgraph induced by
  v and its neighbours (the knowledge behind k-neighborhood anonymity
  [Zhou & Pei 2008], included to show k-symmetry subsumes it).
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from functools import partial

from repro.graphs.csr import (
    all_degrees,
    all_neighbor_degree_sequences,
    all_triangle_counts,
)
from repro.graphs.graph import Graph
from repro.graphs.partition import Partition
from repro.runtime import parallel_map
from repro.utils.validation import GraphStructureError, ReproError

Vertex = Hashable
Measure = Callable[[Graph, Vertex], Hashable]


def degree_measure(graph: Graph, v: Vertex) -> int:
    """deg(v)."""
    return graph.degree(v)


def neighbor_degree_sequence(graph: Graph, v: Vertex) -> tuple[int, ...]:
    """Deg(v): the sorted degrees of v's neighbours."""
    csr = graph.csr()
    try:
        i = csr.index[v]
    except KeyError as exc:
        raise GraphStructureError(f"vertex {v!r} not in graph") from exc
    return csr.neighbor_degree_sequences()[i]


def triangle_measure(graph: Graph, v: Vertex) -> int:
    """tri(v): the number of triangles passing through v."""
    return graph.triangles_at(v)


def combined_measure(graph: Graph, v: Vertex) -> tuple:
    """The paper's combined measure f(v) = (Deg(v), tri(v))."""
    return (neighbor_degree_sequence(graph, v), triangle_measure(graph, v))


def all_combined_measures(graph: Graph) -> dict[Vertex, tuple]:
    """f(v) = (Deg(v), tri(v)) for every vertex, in one pass each."""
    csr = graph.csr()
    return dict(zip(
        csr.vertices,
        zip(csr.neighbor_degree_sequences(), csr.triangle_counts().tolist()),
    ))


# Whole-graph extractors over the CSR view; ``measure_values`` dispatches to
# these for the registered structural measures instead of sharding per-vertex
# calls (the batch pass beats any worker fan-out by orders of magnitude).
_BATCH_EXTRACTORS: dict[str, Callable[[Graph], dict]] = {
    "degree": all_degrees,
    "neighbor_degrees": all_neighbor_degree_sequences,
    "triangles": all_triangle_counts,
    "combined": all_combined_measures,
}


def neighborhood_measure(graph: Graph, v: Vertex) -> Hashable:
    """Isomorphism class of the 1-neighbourhood of v (v marked as centre).

    Encoded as a canonical certificate of the induced subgraph on
    {v} ∪ N(v) with v distinguished by color.
    """
    from repro.isomorphism.canonical import certificate

    closed = set(graph.neighbors(v)) | {v}
    sub = graph.subgraph(closed)
    coloring = {u: (1 if u == v else 0) for u in closed}
    return certificate(sub, coloring)


MEASURES: dict[str, Measure] = {
    "degree": degree_measure,
    "neighbor_degrees": neighbor_degree_sequence,
    "triangles": triangle_measure,
    "combined": combined_measure,
    "neighborhood": neighborhood_measure,
}


def _measure_one(graph: Graph, measure: Measure | str, v: Vertex) -> Hashable:
    """Worker-side body of one sharded measure evaluation."""
    return resolve_measure(measure)(graph, v)


def measure_values(graph: Graph, measure: Measure | str, jobs: int | None = None) -> dict[Vertex, Hashable]:
    """f(v) for every vertex, optionally sharded across *jobs* workers.

    The vertex order of the result matches ``graph.vertices()`` and the
    values are identical for any worker count (each evaluation is a pure
    function of the graph).

    The registered structural measures (``degree``, ``neighbor_degrees``,
    ``triangles``, ``combined``) are served by the whole-graph batch
    extractors over the CSR view — one array pass for all n vertices —
    and *jobs* is ignored for them (the pass is faster than any fan-out and
    its output is worker-count independent by construction). Other measures
    (``neighborhood``, custom callables) shard per vertex as before;
    registered names ship to workers as strings, and an unpicklable custom
    callable silently degrades to serial evaluation via the runtime's
    fallback.
    """
    batch = _BATCH_EXTRACTORS.get(_measure_name(measure))
    if batch is not None:
        return batch(graph)
    vertices = graph.vertices()
    reference = measure if isinstance(measure, str) else resolve_measure(measure)
    values = parallel_map(partial(_measure_one, graph, reference), vertices, jobs=jobs)
    return dict(zip(vertices, values))


def _measure_name(measure: Measure | str) -> str | None:
    """The registered name of *measure*, for callables registered in MEASURES too."""
    if isinstance(measure, str):
        return measure
    for name, fn in MEASURES.items():
        if fn is measure:
            return name
    return None


def measure_partition(graph: Graph, measure: Measure | str, jobs: int | None = None) -> Partition:
    """The partition V_f induced by a measure over the whole graph."""
    return Partition.from_coloring(measure_values(graph, measure, jobs=jobs))


def resolve_measure(measure: Measure | str) -> Measure:
    """Accept a measure callable or one of the registered names."""
    if callable(measure):
        return measure
    try:
        return MEASURES[measure]
    except KeyError as exc:
        raise ReproError(
            f"unknown measure {measure!r}; registered: {sorted(MEASURES)}"
        ) from exc
