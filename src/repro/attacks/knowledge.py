"""Structural knowledge measures (paper Section 2.2).

A *measure* f assigns each vertex an isomorphism-invariant value computable
from the topology; an adversary who learns f(target) from the real world can
restrict candidates in a published graph to the vertices with the same value.
Measures induce the equivalence v ≈_f u iff f(v) = f(u) and hence a partition
V_f of the vertex set; because every measure here is isomorphism-invariant,
Orb(G) always refines V_f — the orbit partition is the limit of what any such
measure (or combination) can reveal.

Measures implemented:

* ``degree`` — deg(v);
* ``neighbor_degrees`` — Deg(v), the sorted degree sequence of v's
  neighbourhood (the paper's first combined-component);
* ``triangles`` — tri(v), triangles through v;
* ``combined`` — the paper's f(v) = (Deg(v), tri(v));
* ``neighborhood`` — the isomorphism class of the subgraph induced by
  v and its neighbours (the knowledge behind k-neighborhood anonymity
  [Zhou & Pei 2008], included to show k-symmetry subsumes it).
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from functools import partial

from repro.graphs.graph import Graph
from repro.graphs.partition import Partition
from repro.runtime import parallel_map
from repro.utils.validation import ReproError

Vertex = Hashable
Measure = Callable[[Graph, Vertex], Hashable]


def degree_measure(graph: Graph, v: Vertex) -> int:
    """deg(v)."""
    return graph.degree(v)


def neighbor_degree_sequence(graph: Graph, v: Vertex) -> tuple[int, ...]:
    """Deg(v): the sorted degrees of v's neighbours."""
    return tuple(sorted(graph.degree(u) for u in graph.neighbors(v)))


def triangle_measure(graph: Graph, v: Vertex) -> int:
    """tri(v): the number of triangles passing through v."""
    return graph.triangles_at(v)


def combined_measure(graph: Graph, v: Vertex) -> tuple:
    """The paper's combined measure f(v) = (Deg(v), tri(v))."""
    return (neighbor_degree_sequence(graph, v), triangle_measure(graph, v))


def neighborhood_measure(graph: Graph, v: Vertex) -> Hashable:
    """Isomorphism class of the 1-neighbourhood of v (v marked as centre).

    Encoded as a canonical certificate of the induced subgraph on
    {v} ∪ N(v) with v distinguished by color.
    """
    from repro.isomorphism.canonical import certificate

    closed = set(graph.neighbors(v)) | {v}
    sub = graph.subgraph(closed)
    coloring = {u: (1 if u == v else 0) for u in closed}
    return certificate(sub, coloring)


MEASURES: dict[str, Measure] = {
    "degree": degree_measure,
    "neighbor_degrees": neighbor_degree_sequence,
    "triangles": triangle_measure,
    "combined": combined_measure,
    "neighborhood": neighborhood_measure,
}


def _measure_one(graph: Graph, measure: Measure | str, v: Vertex) -> Hashable:
    """Worker-side body of one sharded measure evaluation."""
    return resolve_measure(measure)(graph, v)


def measure_values(graph: Graph, measure: Measure | str, jobs: int | None = None) -> dict[Vertex, Hashable]:
    """f(v) for every vertex, optionally sharded across *jobs* workers.

    The vertex order of the result matches ``graph.vertices()`` and the
    values are identical for any worker count (each evaluation is a pure
    function of the graph). Registered measure *names* ship to workers as
    strings; an unpicklable custom callable silently degrades to serial
    evaluation via the runtime's fallback.
    """
    vertices = graph.vertices()
    reference = measure if isinstance(measure, str) else resolve_measure(measure)
    values = parallel_map(partial(_measure_one, graph, reference), vertices, jobs=jobs)
    return dict(zip(vertices, values))


def measure_partition(graph: Graph, measure: Measure | str, jobs: int | None = None) -> Partition:
    """The partition V_f induced by a measure over the whole graph."""
    return Partition.from_coloring(measure_values(graph, measure, jobs=jobs))


def resolve_measure(measure: Measure | str) -> Measure:
    """Accept a measure callable or one of the registered names."""
    if callable(measure):
        return measure
    try:
        return MEASURES[measure]
    except KeyError as exc:
        raise ReproError(
            f"unknown measure {measure!r}; registered: {sorted(MEASURES)}"
        ) from exc
