"""Brute-force oracles for the adversary-arena attack modules.

Small-graph reference implementations of the (k,ℓ)-sweep, the unlocated
candidate set and sybil recovery, sharing **no code path** with the fast
implementations in :mod:`repro.attacks.adjacency` and
:mod:`repro.attacks.sybil`: plain neighbour-set signatures instead of
bitmasks, :func:`itertools.permutations` instead of pruned backtracking,
the full automorphism list from :mod:`repro.isomorphism.brute` instead of
a generator-orbit closure.  The parity suites assert byte-for-byte equal
results on every graph up to :data:`ORACLE_MAX_N` vertices; beyond that
the oracles refuse to run.
"""

from __future__ import annotations

from collections.abc import Sequence
from itertools import combinations, permutations
from math import comb

from repro.attacks.adjacency import KL_KINDS, KLAnonymityReport
from repro.attacks.sybil import SybilPlan, SybilTargetReport
from repro.graphs.graph import Graph, Vertex, _sorted_if_possible
from repro.isomorphism.brute import brute_force_automorphisms
from repro.utils.validation import ReproError

#: Hard vertex cap for the exhaustive oracles.
ORACLE_MAX_N = 8


def _check_small(graph: Graph, max_n: int) -> None:
    if graph.n > max_n:
        raise ReproError(f"oracle limited to {max_n} vertices, graph has {graph.n}")


def _naive_signature(graph: Graph, attackers: Sequence[Vertex], v: Vertex, kind: str):
    """Independent signature computation via repeated has_edge probes."""
    hits = tuple(i for i, s in enumerate(attackers) if graph.has_edge(v, s))
    return hits if kind == "adjacency" else len(hits)


def kl_anonymity_oracle(
    graph: Graph, ell: int, kind: str = "adjacency", max_n: int = ORACLE_MAX_N
) -> KLAnonymityReport:
    """Exhaustive located (k,ℓ)-sweep; same report, no bitmasks, no chunking."""
    if kind not in KL_KINDS:
        raise ReproError(f"unknown (k,l) knowledge kind {kind!r}; expected one of {KL_KINDS}")
    if ell < 0:
        raise ReproError(f"ell must be non-negative, got {ell}")
    _check_small(graph, max_n)
    order = graph.sorted_vertices()
    n = len(order)
    max_size = min(ell, n - 1)
    if n == 0 or max_size < 1:
        return KLAnonymityReport(
            ell=ell, kind=kind, anonymity=n, attackers=(), n_subsets=0, vacuous=True
        )
    best = n + 1
    witness: tuple = ()
    n_subsets = 0
    for size in range(1, max_size + 1):
        n_subsets += comb(n, size)
        for subset in combinations(order, size):
            members = set(subset)
            classes: dict = {}
            for v in order:
                if v in members:
                    continue
                key = _naive_signature(graph, subset, v, kind)
                classes[key] = classes.get(key, 0) + 1
            local = min(classes.values(), default=n)
            if local < best:
                best = local
                witness = subset
    return KLAnonymityReport(
        ell=ell,
        kind=kind,
        anonymity=min(best, n),
        attackers=witness,
        n_subsets=n_subsets,
        vacuous=False,
    )


def kl_candidate_set_oracle(
    published: Graph,
    attackers: Sequence[Vertex],
    target: Vertex,
    kind: str = "adjacency",
    located: bool = True,
    max_n: int = ORACLE_MAX_N,
) -> list:
    """Candidate set via exhaustive enumeration of all automorphism images."""
    if kind not in KL_KINDS:
        raise ReproError(f"unknown (k,l) knowledge kind {kind!r}; expected one of {KL_KINDS}")
    _check_small(published, max_n)
    attackers = tuple(attackers)
    if len(set(attackers)) != len(attackers):
        raise ReproError("attacker vertices must be distinct")
    for s in attackers:
        if s not in published:
            raise ReproError(f"attacker vertex {s!r} not in graph")
    if target not in published:
        raise ReproError(f"target {target!r} not in graph")
    if target in attackers:
        raise ReproError(f"target {target!r} is an attacker vertex")
    fingerprint = _naive_signature(published, attackers, target, kind)
    if located:
        placements = [attackers]
    else:
        placements = sorted(
            {
                tuple(g(s) for s in attackers)
                for g in brute_force_automorphisms(published, max_n=max_n)
            }
        )
    candidates: set = set()
    for placement in placements:
        members = set(placement)
        for u in published.vertices():
            if u in members:
                continue
            if _naive_signature(published, placement, u, kind) == fingerprint:
                candidates.add(u)
    return _sorted_if_possible(list(candidates))


def recover_sybil_tuples_oracle(
    published: Graph, plan: SybilPlan, max_n: int = ORACLE_MAX_N + 4
) -> list[tuple]:
    """Sybil recovery by scanning every ordered vertex tuple of length ℓ."""
    _check_small(published, max_n)
    if published.n < plan.n_sybils:
        return []
    pattern = set(plan.pattern)
    out: list[tuple] = []
    for candidate in permutations(published.sorted_vertices(), plan.n_sybils):
        if all(
            published.has_edge(candidate[i], candidate[j]) == ((i, j) in pattern)
            for i in range(plan.n_sybils)
            for j in range(i + 1, plan.n_sybils)
        ):
            out.append(candidate)
    return out


def reidentify_targets_oracle(
    published: Graph, plan: SybilPlan, recoveries: Sequence[tuple]
) -> list[SybilTargetReport]:
    """Fingerprint matching recomputed from scratch with has_edge probes."""
    reports = []
    for target, ranks in plan.fingerprints:
        want = set(ranks)
        candidates: set = set()
        for placement in recoveries:
            members = set(placement)
            for u in published.vertices():
                if u in members:
                    continue
                got = {
                    i for i, x in enumerate(placement) if published.has_edge(u, x)
                }
                if got == want:
                    candidates.add(u)
        reports.append(
            SybilTargetReport(
                target=target,
                fingerprint=ranks,
                candidates=tuple(_sorted_if_possible(list(candidates))),
            )
        )
    return reports
