"""Link disclosure analysis: what k-symmetry does for *edges*.

Section 5.2 argues that excluding hubs from identity protection does not
endanger anyone else's identity "and the link disclosure in the network" —
because a link (u, v) can only be confirmed when both endpoints are pinned
down. This module makes link privacy measurable:

* the *edge orbit* of (u, v) under Aut(G) — every image of the edge under
  the automorphism group — lower-bounds the candidate set of any structural
  assertion about a relationship, exactly as vertex orbits do for
  identities;
* :func:`link_disclosure_probability` quantifies the adversary's best case
  for confirming a specific relationship between two re-identified-up-to-k
  individuals.

In a k-symmetric graph every vertex orbit has >= k members, and an edge's
orbit has at least max(k, ...) / worst case k members when either endpoint
lies in a non-trivial orbit with edge-transitive images — the precise bound
is computed, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.graph import Graph, _sorted_if_possible
from repro.graphs.permutation import Permutation
from repro.isomorphism.orbits import automorphism_partition
from repro.utils.unionfind import UnionFind
from repro.utils.validation import GraphStructureError


def edge_orbits(graph: Graph, generators: list[Permutation] | None = None) -> list[list[tuple]]:
    """Orbits of Aut(G) acting on the edge set.

    Edges are represented as sorted tuples. *generators* may be supplied to
    reuse an existing automorphism computation. Both each orbit's members
    and the orbit list itself are deterministically sorted (the union-find
    set order tracks edge insertion order, which is not a graph property).
    """
    if generators is None:
        generators = automorphism_partition(graph).generators

    def canonical(u, v):
        return (u, v) if repr(u) <= repr(v) else (v, u)

    uf = UnionFind(canonical(u, v) for u, v in graph.edges())
    for gen in generators:
        for u, v in graph.edges():
            image = canonical(gen(u), gen(v))
            uf.union(canonical(u, v), image)
    orbits = [_sorted_if_possible(list(orbit)) for orbit in uf.sets()]
    orbits.sort(key=lambda orbit: [repr(edge) for edge in orbit])
    return orbits


def edge_orbit_of(graph: Graph, u, v, generators: list[Permutation] | None = None) -> list[tuple]:
    """The edge orbit containing (u, v)."""
    if not graph.has_edge(u, v):
        raise GraphStructureError(f"({u!r}, {v!r}) is not an edge")
    target = (u, v) if repr(u) <= repr(v) else (v, u)
    for orbit in edge_orbits(graph, generators):
        if target in orbit:
            return orbit
    raise AssertionError("edge orbits must cover every edge")  # pragma: no cover


@dataclass
class LinkDisclosureReport:
    """Worst-case link privacy of one published graph."""

    min_edge_orbit: int
    max_confirmation_probability: float
    n_edge_orbits: int

    def k_link_private(self, k: int) -> bool:
        """Whether every relationship hides among at least k candidate edges."""
        return self.min_edge_orbit >= k


def link_disclosure_report(graph: Graph, generators: list[Permutation] | None = None) -> LinkDisclosureReport:
    """Aggregate link privacy: the smallest edge orbit caps every edge attack.

    For any structural assertion P about a relationship, the candidate edge
    set contains the edge's orbit (the edge-level analogue of the paper's
    Section 2.1 argument), so 1/min-orbit-size bounds the adversary's
    confirmation probability.
    """
    orbits = edge_orbits(graph, generators)
    if not orbits:
        return LinkDisclosureReport(0, 0.0, 0)
    smallest = min(len(orbit) for orbit in orbits)
    return LinkDisclosureReport(
        min_edge_orbit=smallest,
        max_confirmation_probability=1.0 / smallest,
        n_edge_orbits=len(orbits),
    )


def link_disclosure_probability(graph: Graph, u, v,
                                generators: list[Permutation] | None = None) -> float:
    """1 / |edge orbit of (u, v)|: the cap on confirming this relationship."""
    return 1.0 / len(edge_orbit_of(graph, u, v, generators))
