"""The vertex refinement knowledge hierarchy H_i (Hay et al., VLDB 2008).

The paper's reference [4] organises structural background knowledge into a
hierarchy of increasingly powerful queries about a target:

* H0(v) — nothing (the vertex exists);
* H1(v) — the degree of v;
* H{i+1}(v) — the multiset of H_i values of v's neighbours.

Each level induces a partition of the vertex set; levels only refine. This
is exactly one round of colour refinement per level, so the hierarchy's
limit H* is the paper's §7 stabilization partition TDV(G) — and therefore
(by §2.1) sandwiched between any single measure and the orbit bound:

    V_{H1} ⊇ V_{H2} ⊇ ... ⊇ V_{H*} = TDV(G) ⊇ Orb(G).

The experiments here let one ask "how much knowledge depth does an adversary
need": on the paper's networks, H2 already achieves most of the orbit
bound's power (consistent with Hay et al.'s findings), which is the same
story as the paper's combined measure in Figure 2.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.graphs.graph import Graph, _sorted_if_possible
from repro.graphs.partition import Partition
from repro.utils.validation import ReproError

Vertex = Hashable


def hierarchy_signatures(graph: Graph, depth: int) -> dict[Vertex, Hashable]:
    """H_depth(v) for every vertex, as canonical hashable values.

    ``depth=0`` gives the trivial signature; each further level replaces a
    vertex's value with the sorted multiset of its neighbours' previous
    values. Values are hash-consed to small integers per level, so deep
    signatures stay cheap to compare.
    """
    if depth < 0:
        raise ReproError(f"depth must be >= 0, got {depth}")
    current: dict[Vertex, int] = {v: 0 for v in graph.vertices()}
    for _ in range(depth):
        interned: dict[tuple, int] = {}
        following: dict[Vertex, int] = {}
        for v in graph.vertices():
            key = (current[v], tuple(sorted(current[u] for u in graph.neighbors(v))))
            if key not in interned:
                interned[key] = len(interned)
            following[v] = interned[key]
        current = following
    return current


def hierarchy_partition(graph: Graph, depth: int) -> Partition:
    """The partition induced by H_depth (candidate classes at that depth)."""
    return Partition.from_coloring(hierarchy_signatures(graph, depth))


def hierarchy_level_partitions(graph: Graph, max_depth: int) -> list[Partition]:
    """Partitions for H_0 .. H_max_depth (each refining the previous)."""
    return [hierarchy_partition(graph, depth) for depth in range(max_depth + 1)]


def knowledge_depth_to_stability(graph: Graph, max_depth: int = 64) -> int:
    """The depth at which the hierarchy stops refining (reaches TDV-like fixpoint).

    This is the diameter-ish number of refinement rounds; the returned depth
    d satisfies partition(d) == partition(d+1).
    """
    previous = hierarchy_partition(graph, 0)
    for depth in range(1, max_depth + 1):
        current = hierarchy_partition(graph, depth)
        if current == previous:
            return depth - 1
        previous = current
    return max_depth


def candidate_set_at_depth(graph: Graph, v: Vertex, depth: int) -> list:
    """All vertices sharing the target's H_depth signature, sorted."""
    signatures = hierarchy_signatures(graph, depth)
    if v not in signatures:
        raise ReproError(f"target {v!r} is not a vertex of the graph")
    value = signatures[v]
    return _sorted_if_possible([u for u, sig in signatures.items() if sig == value])
