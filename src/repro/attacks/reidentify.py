"""Candidate sets and structural re-identification attacks (Section 2.1).

The adversary model: a target individual v is known to satisfy some
structural assertion P (here: a measure value observed in the real world);
the candidate set C(P, v) is every vertex of the published graph satisfying
P. The target is re-identified outright when |C| = 1 and with probability
1/|C| in general.

:func:`simulate_attack` runs the full story end to end: measure the target
in the secret original, search the published graph, report the candidate
set — against a naively-anonymized release it shrinks to the orbit bound,
against a k-symmetric release it never drops below k.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass

from repro.attacks.knowledge import Measure, measure_values, resolve_measure
from repro.graphs.graph import Graph, _sorted_if_possible
from repro.utils.validation import ReproError

Vertex = Hashable


def candidate_set(
    published: Graph, measure: Measure | str, observed_value: Hashable,
    jobs: int | None = None,
) -> list:
    """C(P, ·): all vertices of *published* whose measure equals the observation.

    Returned as a deterministically sorted list (every candidate-set API in
    :mod:`repro.attacks` sorts its returns, so reports and pins are stable).
    *jobs* shards the per-vertex measure evaluation across worker processes
    (see :mod:`repro.runtime`); the result is identical for any value.
    """
    values = measure_values(published, measure, jobs=jobs)
    return _sorted_if_possible(
        [u for u, value in values.items() if value == observed_value]
    )


def reidentification_probability(
    published: Graph, measure: Measure | str, observed_value: Hashable,
    jobs: int | None = None,
) -> float:
    """1/|C|, the adversary's success probability; 0.0 when nothing matches."""
    size = len(candidate_set(published, measure, observed_value, jobs=jobs))
    return 0.0 if size == 0 else 1.0 / size


def unique_reidentification_count(
    graph: Graph, measure: Measure | str, jobs: int | None = None
) -> int:
    """How many vertices the measure pins down uniquely in *graph*."""
    values = measure_values(graph, measure, jobs=jobs)
    counts: dict[Hashable, int] = {}
    for key in values.values():
        counts[key] = counts.get(key, 0) + 1
    return sum(1 for key in values.values() if counts[key] == 1)


@dataclass
class AttackOutcome:
    """Result of one simulated structural re-identification attempt."""

    target: Vertex
    measure_name: str
    observed_value: Hashable
    candidates: list
    success_probability: float

    @property
    def re_identified(self) -> bool:
        return len(self.candidates) == 1

    @property
    def anonymity(self) -> int:
        """The k actually achieved against this knowledge (|C|)."""
        return len(self.candidates)


def simulate_attack(
    published: Graph,
    target: Vertex,
    measure: Measure | str,
    knowledge_graph: Graph | None = None,
    jobs: int | None = None,
) -> AttackOutcome:
    """One structural re-identification attempt against *published*.

    The adversary's assertion about the target is the measure value taken in
    *knowledge_graph* (default: the published graph itself, i.e. knowledge
    that is true of the target as published — the setting the k-symmetry
    guarantee quantifies: the candidate set then contains Orb(target) and,
    for a k-symmetric release, has at least k members).

    Passing the secret original as *knowledge_graph* models a stale
    adversary: because anonymization inserts vertices and edges, knowledge
    gathered on the original (degrees, triangles...) may match different
    vertices — or none — in the published graph. The candidate set then
    carries no containment guarantee; it is reported as-is.
    """
    fn = resolve_measure(measure)
    name = measure if isinstance(measure, str) else getattr(measure, "__name__", "custom")
    source = published if knowledge_graph is None else knowledge_graph
    if target not in source:
        raise ReproError(f"target {target!r} is not a vertex of the knowledge graph")
    observed = fn(source, target)
    candidates = candidate_set(published, measure, observed, jobs=jobs)
    if knowledge_graph is None and target not in candidates:
        raise ReproError(
            f"internal inconsistency: target {target!r} does not match its own knowledge"
        )
    size = len(candidates)
    return AttackOutcome(
        target=target,
        measure_name=name,
        observed_value=observed,
        candidates=candidates,
        success_probability=0.0 if size == 0 else 1.0 / size,
    )
