"""The adversary's side: structural knowledge and re-identification (Section 2).

* :mod:`repro.attacks.knowledge` — structural measures (degree, neighbour
  degree sequence, triangle count, the paper's combined measure, and a
  1-neighbourhood measure) and the vertex partitions they induce;
* :mod:`repro.attacks.reidentify` — candidate sets, re-identification
  probabilities and end-to-end attack simulation against published graphs;
* :mod:`repro.attacks.statistics` — the paper's r_f and s_f statistics
  quantifying a measure's power relative to the orbit upper bound
  (Figure 2).
"""

from repro.attacks.knowledge import (
    MEASURES,
    degree_measure,
    neighbor_degree_sequence,
    triangle_measure,
    combined_measure,
    neighborhood_measure,
    measure_partition,
)
from repro.attacks.reidentify import (
    candidate_set,
    reidentification_probability,
    unique_reidentification_count,
    AttackOutcome,
    simulate_attack,
)
from repro.attacks.statistics import r_statistic, s_statistic, measure_power_report
from repro.attacks.hierarchy import (
    hierarchy_signatures,
    hierarchy_partition,
    hierarchy_level_partitions,
    candidate_set_at_depth,
    knowledge_depth_to_stability,
)
from repro.attacks.links import (
    edge_orbits,
    edge_orbit_of,
    link_disclosure_report,
    link_disclosure_probability,
    LinkDisclosureReport,
)

__all__ = [
    "MEASURES",
    "degree_measure",
    "neighbor_degree_sequence",
    "triangle_measure",
    "combined_measure",
    "neighborhood_measure",
    "measure_partition",
    "candidate_set",
    "reidentification_probability",
    "unique_reidentification_count",
    "AttackOutcome",
    "simulate_attack",
    "r_statistic",
    "s_statistic",
    "measure_power_report",
    "hierarchy_signatures",
    "hierarchy_partition",
    "hierarchy_level_partitions",
    "candidate_set_at_depth",
    "knowledge_depth_to_stability",
    "edge_orbits",
    "edge_orbit_of",
    "link_disclosure_report",
    "link_disclosure_probability",
    "LinkDisclosureReport",
]
