"""The adversary's side: structural knowledge and re-identification (Section 2).

* :mod:`repro.attacks.knowledge` — structural measures (degree, neighbour
  degree sequence, triangle count, the paper's combined measure, and a
  1-neighbourhood measure) and the vertex partitions they induce;
* :mod:`repro.attacks.reidentify` — candidate sets, re-identification
  probabilities and end-to-end attack simulation against published graphs;
* :mod:`repro.attacks.statistics` — the paper's r_f and s_f statistics
  quantifying a measure's power relative to the orbit upper bound
  (Figure 2);
* :mod:`repro.attacks.sequential` — the composition adversary correlating
  two releases of an evolving network (vertex-overlap + measure-diff
  candidate pruning);
* :mod:`repro.attacks.adjacency` — the related-work (k,ℓ)-adjacency and
  (k,ℓ)-multiset adversaries (located sweeps and the unlocated
  pseudonymous candidate sets);
* :mod:`repro.attacks.sybil` — the active sybil-subgraph adversary
  (plant, recover, re-identify);
* :mod:`repro.attacks.reference` — exhaustive small-graph oracles for the
  adversary-arena modules.

Every candidate-set API in this package returns a deterministically sorted
list.
"""

from repro.attacks.adjacency import (
    AttackerMeasure,
    KLAnonymityReport,
    anonymity_with_attackers,
    attacker_signature,
    kl_anonymity_report,
    kl_candidate_set,
    minimum_kl_anonymity,
    signature_partition,
)
from repro.attacks.hierarchy import (
    candidate_set_at_depth,
    hierarchy_level_partitions,
    hierarchy_partition,
    hierarchy_signatures,
    knowledge_depth_to_stability,
)
from repro.attacks.knowledge import (
    MEASURES,
    combined_measure,
    degree_measure,
    measure_partition,
    neighbor_degree_sequence,
    neighborhood_measure,
    triangle_measure,
)
from repro.attacks.links import (
    LinkDisclosureReport,
    edge_orbit_of,
    edge_orbits,
    link_disclosure_probability,
    link_disclosure_report,
)
from repro.attacks.reidentify import (
    AttackOutcome,
    candidate_set,
    reidentification_probability,
    simulate_attack,
    unique_reidentification_count,
)
from repro.attacks.sequential import (
    SequentialAttackOutcome,
    composed_candidate_set,
    minimum_composed_anonymity,
    sequential_attack,
)
from repro.attacks.statistics import measure_power_report, r_statistic, s_statistic
from repro.attacks.sybil import (
    SybilAttackOutcome,
    SybilPlan,
    SybilTargetReport,
    plant_sybils,
    recover_sybil_tuples,
    reidentify_targets,
    sybil_attack,
)

__all__ = [
    "AttackerMeasure",
    "KLAnonymityReport",
    "attacker_signature",
    "signature_partition",
    "anonymity_with_attackers",
    "kl_anonymity_report",
    "kl_candidate_set",
    "minimum_kl_anonymity",
    "SybilPlan",
    "SybilAttackOutcome",
    "SybilTargetReport",
    "plant_sybils",
    "recover_sybil_tuples",
    "reidentify_targets",
    "sybil_attack",
    "MEASURES",
    "degree_measure",
    "neighbor_degree_sequence",
    "triangle_measure",
    "combined_measure",
    "neighborhood_measure",
    "measure_partition",
    "candidate_set",
    "reidentification_probability",
    "unique_reidentification_count",
    "AttackOutcome",
    "simulate_attack",
    "SequentialAttackOutcome",
    "sequential_attack",
    "composed_candidate_set",
    "minimum_composed_anonymity",
    "r_statistic",
    "s_statistic",
    "measure_power_report",
    "hierarchy_signatures",
    "hierarchy_partition",
    "hierarchy_level_partitions",
    "candidate_set_at_depth",
    "knowledge_depth_to_stability",
    "edge_orbits",
    "edge_orbit_of",
    "link_disclosure_report",
    "link_disclosure_probability",
    "LinkDisclosureReport",
]
