"""The sequential-release (composition) adversary: correlating two releases.

An adversary holding two publications of the same evolving network is
strictly stronger than one holding either alone: vertex ids persist across
releases, so the target's candidate sets can be intersected. Against a
publisher who re-anonymizes each snapshot independently, cells shatter
between releases and the intersection collapses — frequently to a single
vertex — even though each release is k-symmetric on its own. This is the
cross-release re-identification threat of Mauw, Ramírez-Cruz &
Trujillo-Rasua (arXiv:2007.05312), specialized to the structural-measure
knowledge model of Section 2.1.

Two pruning rules are applied:

* **vertex overlap** — a persistent target must appear in both candidate
  sets; a target known to have joined between the releases cannot be any
  release-0 vertex, so its release-1 candidates are pruned by release 0's
  entire vertex set;
* **measure diff** — the target's measure is observed separately in each
  release (structural knowledge evolves with the graph), so each candidate
  set is computed against its own release's value before intersecting.

:func:`repro.core.republish.republish` defeats this adversary by monotone
cells (the release-0 cell is contained in the release-1 cell, so the
intersection retains >= k members); :func:`~repro.core.republish.
republish_naive` demonstrably does not. The audit certificate
:func:`repro.audit.certificates.check_sequential_composition` sweeps this
attack over release histories.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass

from repro.attacks.knowledge import Measure, resolve_measure
from repro.attacks.reidentify import candidate_set
from repro.graphs.graph import Graph
from repro.utils.validation import ReproError

Vertex = Hashable


@dataclass
class SequentialAttackOutcome:
    """Result of one composed re-identification attempt across two releases."""

    target: Vertex
    measure_name: str
    fresh_target: bool
    release0_candidates: list
    release1_candidates: list
    composed: list

    @property
    def anonymity(self) -> int:
        """The k actually achieved against the composed knowledge."""
        return len(self.composed)

    @property
    def re_identified(self) -> bool:
        return len(self.composed) == 1

    @property
    def success_probability(self) -> float:
        size = len(self.composed)
        return 0.0 if size == 0 else 1.0 / size


def composed_candidate_set(
    release0: Graph, release1: Graph, target: Vertex,
    measure: Measure | str, jobs: int | None = None,
) -> list:
    """The composed candidate set (sorted); see :func:`sequential_attack`."""
    return sequential_attack(release0, release1, target, measure, jobs=jobs).composed


def sequential_attack(
    release0: Graph,
    release1: Graph,
    target: Vertex,
    measure: Measure | str,
    jobs: int | None = None,
) -> SequentialAttackOutcome:
    """Correlate two published releases against one target.

    The adversary observes the target's measure in each release it appears
    in (the same in-release knowledge model as
    :func:`repro.attacks.reidentify.simulate_attack`) and intersects the
    per-release candidate sets by vertex id. A target absent from
    *release0* (a *fresh* target, known to have joined later) instead has
    its release-1 candidates pruned by release 0's whole vertex set.

    The target must be a vertex of *release1*; the composed set always
    contains it, so ``anonymity`` is at least 1.
    """
    fn = resolve_measure(measure)
    name = measure if isinstance(measure, str) else getattr(measure, "__name__", "custom")
    if target not in release1:
        raise ReproError(f"target {target!r} is not a vertex of the newer release")
    candidates1 = candidate_set(release1, measure, fn(release1, target), jobs=jobs)
    if target in release0:
        candidates0 = candidate_set(release0, measure, fn(release0, target), jobs=jobs)
        newer = set(candidates1)
        composed = [v for v in candidates0 if v in newer]
    else:
        candidates0 = []
        composed = [v for v in candidates1 if v not in release0]
    if target not in composed:
        raise ReproError(
            f"internal inconsistency: target {target!r} does not match its own knowledge")
    return SequentialAttackOutcome(
        target=target,
        measure_name=name,
        fresh_target=target not in release0,
        release0_candidates=candidates0,
        release1_candidates=candidates1,
        composed=composed,
    )


def minimum_composed_anonymity(
    release0: Graph, release1: Graph, measure: Measure | str,
    targets=None, jobs: int | None = None,
) -> int:
    """The smallest composed candidate set over *targets* (default: all of release 1)."""
    if targets is None:
        targets = release1.sorted_vertices()
    smallest = None
    for target in targets:
        outcome = sequential_attack(release0, release1, target, measure, jobs=jobs)
        if smallest is None or outcome.anonymity < smallest:
            smallest = outcome.anonymity
    return 0 if smallest is None else smallest
