"""The r_f and s_f statistics (paper Section 2.2, Figure 2).

Both compare the partition V_f induced by a measure f against the
automorphism partition Orb(G), the theoretical ceiling of structural
knowledge:

* ``r_f`` — the ratio of *unique re-identifications*: the number of
  singleton cells of V_f over the number of singleton orbits. A value near
  1 means f alone already pins down almost every vertex that any knowledge
  could pin down.
* ``s_f`` — the similarity of the two partitions via ordered
  indistinguishable pairs: sum over orbits of |Δ|(|Δ|-1) divided by the same
  sum over V_f cells. Because every measure here is isomorphism-invariant,
  Orb(G) refines V_f, the denominator dominates the numerator, and
  s_f ∈ [0, 1] with 1 meaning V_f = Orb(G) in the pairs sense.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.knowledge import Measure, measure_partition
from repro.graphs.graph import Graph
from repro.graphs.partition import Partition
from repro.isomorphism.orbits import automorphism_partition


def _singletons(partition: Partition) -> int:
    return sum(1 for cell in partition.cells if len(cell) == 1)


def _pair_sum(partition: Partition) -> int:
    return sum(len(cell) * (len(cell) - 1) for cell in partition.cells)


def r_statistic(measure_part: Partition, orbit_part: Partition) -> float:
    """r_f: unique re-identifications of f relative to the orbit bound.

    When the graph has no singleton orbits nothing can be uniquely
    re-identified at all; the measure is then trivially at the bound and the
    statistic is defined as 1.0.
    """
    bound = _singletons(orbit_part)
    if bound == 0:
        return 1.0
    return _singletons(measure_part) / bound


def s_statistic(measure_part: Partition, orbit_part: Partition) -> float:
    """s_f: similarity between V_f and Orb(G) in indistinguishable pairs.

    A perfectly symmetric-free graph (both partitions discrete) yields 1.0:
    the measure matches the (empty) bound exactly.
    """
    denominator = _pair_sum(measure_part)
    numerator = _pair_sum(orbit_part)
    if denominator == 0:
        return 1.0 if numerator == 0 else 0.0
    return numerator / denominator


@dataclass
class MeasurePower:
    """r_f and s_f of one measure on one graph."""

    measure_name: str
    r: float
    s: float
    unique_by_measure: int
    unique_bound: int


def measure_power_report(
    graph: Graph,
    measures: dict[str, Measure | str],
    orbit_part: Partition | None = None,
    jobs: int | None = None,
) -> list[MeasurePower]:
    """Evaluate r_f and s_f for several measures on *graph* (Figure 2's data).

    *orbit_part* may be supplied to reuse an already computed Orb(G).
    *jobs* shards each measure's per-vertex evaluation across workers; the
    report is identical for any value (see :mod:`repro.runtime`).
    """
    if orbit_part is None:
        orbit_part = automorphism_partition(graph).orbits
    report = []
    # Rows are emitted in sorted-name order, not dict insertion order, so
    # the report is a function of the inputs alone.
    for name, measure in sorted(measures.items(), key=lambda item: item[0]):
        part = measure_partition(graph, measure, jobs=jobs)
        report.append(
            MeasurePower(
                measure_name=name,
                r=r_statistic(part, orbit_part),
                s=s_statistic(part, orbit_part),
                unique_by_measure=_singletons(part),
                unique_bound=_singletons(orbit_part),
            )
        )
    return report
