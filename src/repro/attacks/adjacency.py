"""(k,ℓ)-adjacency and (k,ℓ)-multiset anonymity (related-work attack models).

The adversary controls a set S of up to ℓ vertices ("attacker accounts")
and learns, for every other vertex v, its relation to S:

* **adjacency** knowledge [Mauw et al. 2017, arXiv:1704.07078]: the exact
  subset of S adjacent to v (who of my accounts is v friends with);
* **multiset** knowledge [Estrada-Moreno et al. 2025, arXiv:2507.08433]:
  only the *count* |N(v) ∩ S| (how many of my accounts v is friends with).

Adjacency knowledge refines multiset knowledge, so adjacency anonymity is
never larger than multiset anonymity for the same S.

Two adversary strengths are modelled:

* **located** (the literature's definition): the adversary knows which
  published vertices are its own accounts.  :func:`minimum_kl_anonymity`
  sweeps every placement S with \\|S\\| ≤ ℓ and reports the worst
  signature-class size among the victims V∖S.  This is *stronger* than the
  paper's passive hierarchy — k-symmetry does **not** bound it in general
  (a 4-cycle is 4-symmetric yet has located (k,1)-anonymity 1), which is
  exactly what the adversary arena is built to measure.
* **unlocated** (the pseudonymous release actually published): the
  adversary must first find its own accounts structurally.  Its placement
  hypotheses are the Aut-orbit of the true attacker tuple, and the
  candidate set is the union over hypotheses — which always contains
  Orb(target) and is therefore ≥ k on a k-symmetric release by
  Definition 1.  :func:`kl_candidate_set` with ``located=False`` computes
  this; ``repro.audit.certificates.check_kl_anonymity`` certifies it.

Everything here is byte-deterministic at any ``jobs`` value: subsets are
enumerated in lexicographic order over the sorted vertex list, workers
return (minimum, lexicographically-first witness) per chunk, and the
reduction is performed in chunk order.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass
from itertools import combinations, islice
from math import comb

from repro.graphs.graph import Graph, _sorted_if_possible
from repro.graphs.partition import Partition
from repro.graphs.permutation import Permutation
from repro.runtime import parallel_map
from repro.utils.validation import ReproError

Vertex = Hashable

KL_KINDS = ("adjacency", "multiset")

#: Subsets per parallel chunk in the ℓ-sweep; large enough to amortise
#: worker dispatch, small enough to keep chunks balanced.
_SWEEP_CHUNK = 2048


def _require_kind(kind: str) -> None:
    if kind not in KL_KINDS:
        raise ReproError(f"unknown (k,l) knowledge kind {kind!r}; expected one of {KL_KINDS}")


def attacker_signature(
    graph: Graph, attackers: Sequence[Vertex], v: Vertex, kind: str = "adjacency"
) -> Hashable:
    """What the adversary learns about *v* from its accounts *attackers*.

    Adjacency knowledge is encoded label-free as the tuple of attacker
    *positions* (indices into the ``attackers`` sequence) adjacent to v, so
    signatures are comparable across relabelings and across placement
    hypotheses; multiset knowledge is the count alone.
    """
    _require_kind(kind)
    if v not in graph:
        raise ReproError(f"vertex {v!r} not in graph")
    nbrs = graph.neighbors(v)
    if kind == "adjacency":
        return tuple(i for i, s in enumerate(attackers) if s in nbrs)
    return sum(1 for s in attackers if s in nbrs)


def signature_partition(
    graph: Graph, attackers: Sequence[Vertex], kind: str = "adjacency"
) -> Partition:
    """The partition of the victims V∖S induced by attacker signatures."""
    _require_kind(kind)
    exclude = set(attackers)
    coloring = {
        v: attacker_signature(graph, attackers, v, kind)
        for v in graph.sorted_vertices()
        if v not in exclude
    }
    return Partition.from_coloring(coloring)


def anonymity_with_attackers(
    graph: Graph, attackers: Sequence[Vertex], kind: str = "adjacency"
) -> int:
    """Worst-case victim anonymity against one fixed, located placement S.

    The smallest signature class among V∖S; when every vertex is an
    attacker (no victims) the placement reveals nothing new and the
    convention is n (fully anonymous, like the empty-knowledge level).
    """
    part = signature_partition(graph, attackers, kind)
    if len(part) == 0:
        return graph.n
    return part.min_cell_size()


# --------------------------------------------------------------------------
# The located sweep: min over all placements |S| ≤ ℓ.
# --------------------------------------------------------------------------


def _bit_adjacency(graph: Graph) -> tuple[list[Vertex], list[int]]:
    """Sorted vertex order plus one adjacency bitmask per vertex."""
    order = graph.sorted_vertices()
    index = {v: i for i, v in enumerate(order)}
    masks = [0] * len(order)
    for u, v in graph.edges():
        iu, iv = index[u], index[v]
        masks[iu] |= 1 << iv
        masks[iv] |= 1 << iu
    return order, masks


def _chunk_min(
    masks: Sequence[int], n: int, size: int, start: int, stop: int, kind: str
) -> tuple[int, tuple[int, ...] | None]:
    """(min victim-class size, lex-first witness) over one slice of C(n, size).

    The slice is positions [start, stop) of ``combinations(range(n), size)``
    in lexicographic order.  Scanning stops early only at the absolute floor
    of 1, which cannot change the (min, lex-first witness) pair.
    """
    best = n + 1
    witness: tuple[int, ...] | None = None
    for combo in islice(combinations(range(n), size), start, stop):
        smask = 0
        for i in combo:
            smask |= 1 << i
        classes: dict[int, int] = {}
        for j in range(n):
            if smask >> j & 1:
                continue
            key = masks[j] & smask
            if kind == "multiset":
                key = key.bit_count()
            classes[key] = classes.get(key, 0) + 1
        local = min(classes.values(), default=n)
        if local < best:
            best = local
            witness = combo
            if best <= 1:
                break
    return best, witness


def _sweep_task(payload: tuple) -> tuple[int, tuple[int, ...] | None]:
    """Picklable worker body: unpack one chunk descriptor and scan it."""
    masks, n, size, start, stop, kind = payload
    return _chunk_min(masks, n, size, start, stop, kind)


@dataclass(frozen=True)
class KLAnonymityReport:
    """Outcome of a located (k,ℓ)-sweep; equal reports are byte-identical."""

    ell: int
    kind: str
    anonymity: int
    attackers: tuple
    n_subsets: int
    vacuous: bool

    def as_dict(self) -> dict:
        return {
            "ell": self.ell,
            "kind": self.kind,
            "anonymity": self.anonymity,
            "attackers": list(self.attackers),
            "n_subsets": self.n_subsets,
            "vacuous": self.vacuous,
        }


def kl_anonymity_report(
    graph: Graph, ell: int, kind: str = "adjacency", jobs: int | None = None
) -> KLAnonymityReport:
    """Located (k,ℓ)-anonymity: sweep every placement S with 1 ≤ |S| ≤ ℓ.

    Placements are capped at n−1 vertices (at least one victim must
    remain); the reported witness is the lexicographically first placement
    (over sorted vertices, smaller sizes first) attaining the minimum.
    Conventions: ℓ = 0 is vacuous (no accounts, anonymity n); the empty
    graph has anonymity 0; ℓ ≥ n clamps to n−1.
    """
    _require_kind(kind)
    if ell < 0:
        raise ReproError(f"ell must be non-negative, got {ell}")
    order, masks = _bit_adjacency(graph)
    n = len(order)
    max_size = min(ell, n - 1)
    if n == 0 or max_size < 1:
        return KLAnonymityReport(
            ell=ell, kind=kind, anonymity=n, attackers=(), n_subsets=0, vacuous=True
        )
    chunks: list[tuple] = []
    n_subsets = 0
    for size in range(1, max_size + 1):
        total = comb(n, size)
        n_subsets += total
        for start in range(0, total, _SWEEP_CHUNK):
            chunks.append((masks, n, size, start, min(start + _SWEEP_CHUNK, total), kind))
    best = n + 1
    witness: tuple[int, ...] | None = None
    if jobs is None or len(chunks) == 1:
        for payload in chunks:
            local, combo = _chunk_min(*payload)
            if local < best:
                best, witness = local, combo
                if best <= 1:
                    break
    else:
        for local, combo in parallel_map(_sweep_task, chunks, jobs=jobs):
            if local < best:
                best, witness = local, combo
    attackers = tuple(order[i] for i in witness) if witness is not None else ()
    return KLAnonymityReport(
        ell=ell,
        kind=kind,
        anonymity=min(best, n),
        attackers=attackers,
        n_subsets=n_subsets,
        vacuous=False,
    )


def minimum_kl_anonymity(
    graph: Graph, ell: int, kind: str = "adjacency", jobs: int | None = None
) -> int:
    """The located (k,ℓ)-anonymity value alone (see :func:`kl_anonymity_report`)."""
    return kl_anonymity_report(graph, ell, kind=kind, jobs=jobs).anonymity


# --------------------------------------------------------------------------
# Candidate sets: located and unlocated adversaries.
# --------------------------------------------------------------------------


def _tuple_orbit(
    start: tuple, generators: Sequence[Permutation]
) -> list[tuple]:
    """Orbit of an ordered vertex tuple under the group ⟨generators⟩ (BFS)."""
    seen = {start}
    frontier = [start]
    while frontier:
        nxt = []
        for tup in frontier:
            for g in generators:
                image = tuple(g(v) for v in tup)
                if image not in seen:
                    seen.add(image)
                    nxt.append(image)
        frontier = nxt
    return _sorted_if_possible(list(seen))


def kl_candidate_set(
    published: Graph,
    attackers: Sequence[Vertex],
    target: Vertex,
    kind: str = "adjacency",
    located: bool = True,
    generators: Sequence[Permutation] | None = None,
) -> list:
    """Candidates for *target* given attacker knowledge; deterministically sorted.

    ``located=True``: the adversary knows its own published vertices; the
    candidates are the victims sharing the target's signature.

    ``located=False``: the release is pseudonymous, so the adversary must
    first hypothesise where its accounts landed.  Hypotheses are the
    Aut-orbit of the true attacker tuple (pass *generators* to reuse a
    computed group; otherwise the exact automorphism search runs here) and
    the candidate set is the union of matches over every hypothesis.  On a
    k-symmetric release this set contains Orb(target) and hence has at
    least k members (Definition 1).
    """
    _require_kind(kind)
    attackers = tuple(attackers)
    if len(set(attackers)) != len(attackers):
        raise ReproError("attacker vertices must be distinct")
    for s in attackers:
        if s not in published:
            raise ReproError(f"attacker vertex {s!r} not in graph")
    if target not in published:
        raise ReproError(f"target {target!r} not in graph")
    if target in attackers:
        raise ReproError(f"target {target!r} is an attacker vertex")
    fingerprint = attacker_signature(published, attackers, target, kind)
    if located:
        exclude = set(attackers)
        return _sorted_if_possible([
            u
            for u in published.vertices()
            if u not in exclude
            and attacker_signature(published, attackers, u, kind) == fingerprint
        ])
    if generators is None:
        from repro.isomorphism.orbits import automorphism_partition

        generators = automorphism_partition(published, method="exact").generators
    candidates: set = set()
    for placement in _tuple_orbit(attackers, generators):
        exclude = set(placement)
        for u in published.vertices():
            if u in exclude or u in candidates:
                continue
            if attacker_signature(published, placement, u, kind) == fingerprint:
                candidates.add(u)
    return _sorted_if_possible(list(candidates))


@dataclass(frozen=True)
class AttackerMeasure:
    """A located (k,ℓ)-adversary packaged as a Section 2.1 measure.

    Instances are picklable module-level callables, so they plug into
    :func:`repro.attacks.simulate_attack`, ``candidate_set`` and
    ``measure_power_report`` unchanged, with the same any-``jobs`` parity.

    Unlike the registered structural measures this one is **not**
    isomorphism-invariant (it references the fixed accounts), so the orbit
    partition need not refine it and the s_f statistic may exceed 1 — the
    arena's whole point: located ℓ-adjacency knowledge can break the
    Section 2.2 orbit ceiling.
    """

    attackers: tuple
    kind: str = "adjacency"

    def __post_init__(self) -> None:
        _require_kind(self.kind)

    def __call__(self, graph: Graph, v: Vertex) -> Hashable:
        return attacker_signature(graph, self.attackers, v, self.kind)

    @property
    def __name__(self) -> str:  # noqa: A003 - measure-protocol display name
        return f"kl-{self.kind}[ell={len(self.attackers)}]"
