"""Disjoint-set (union-find) structure with path compression and union by size.

Used throughout the automorphism machinery to maintain the orbit partition
induced by a growing set of permutation generators, and by the graph substrate
for connected components.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator


class UnionFind:
    """Disjoint sets over arbitrary hashable elements.

    Elements are registered lazily: ``find`` and ``union`` create unseen
    elements as singleton sets. The structure tracks the number of disjoint
    sets so that ``n_sets`` is O(1).

    >>> uf = UnionFind([1, 2, 3])
    >>> uf.union(1, 2)
    True
    >>> uf.connected(1, 2)
    True
    >>> uf.n_sets
    2
    """

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}
        self._n_sets = 0
        for element in elements:
            self.add(element)

    def add(self, element: Hashable) -> None:
        """Register *element* as a singleton set if it is unseen."""
        if element not in self._parent:
            self._parent[element] = element
            self._size[element] = 1
            self._n_sets += 1

    def __contains__(self, element: Hashable) -> bool:
        return element in self._parent

    def __len__(self) -> int:
        """Number of registered elements."""
        return len(self._parent)

    @property
    def n_sets(self) -> int:
        """Number of disjoint sets currently maintained."""
        return self._n_sets

    def find(self, element: Hashable) -> Hashable:
        """Return the canonical representative of *element*'s set.

        Unseen elements are registered as singletons. Uses iterative path
        compression (halving) so deep chains never overflow the stack.
        """
        parent = self._parent
        if element not in parent:
            self.add(element)
            return element
        root = element
        while parent[root] != root:
            parent[root] = parent[parent[root]]
            root = parent[root]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets containing *a* and *b*.

        Returns ``True`` when a merge actually happened, ``False`` when the
        two elements were already in the same set.
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._n_sets -= 1
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Whether *a* and *b* are currently in the same set."""
        return self.find(a) == self.find(b)

    def set_size(self, element: Hashable) -> int:
        """Size of the set containing *element*."""
        return self._size[self.find(element)]

    def groups(self) -> dict[Hashable, list[Hashable]]:
        """Return ``{representative: sorted members}`` for every set.

        Members are sorted when comparable so the output is deterministic;
        otherwise insertion order is preserved.
        """
        out: dict[Hashable, list[Hashable]] = {}
        for element in self._parent:
            out.setdefault(self.find(element), []).append(element)
        for members in out.values():
            try:
                members.sort()
            except TypeError:
                pass
        return out

    def sets(self) -> list[list[Hashable]]:
        """Return the disjoint sets as a list of member lists (deterministic order)."""
        grouped = self.groups()
        cells = list(grouped.values())
        try:
            cells.sort(key=lambda cell: cell[0])
        except TypeError:
            pass
        return cells

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._parent)
