"""Exception hierarchy and argument validation helpers for the package.

Every error raised deliberately by this library derives from :class:`ReproError`
so that callers can catch library failures without also catching programming
errors such as ``TypeError`` raised by misuse of the Python API itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised deliberately by this library."""


class GraphStructureError(ReproError):
    """The graph violates a structural requirement (self-loop, unknown vertex...)."""


class PartitionError(ReproError):
    """A vertex partition is malformed or is not valid for the requested use."""


class AnonymizationError(ReproError):
    """The anonymization procedure received invalid parameters or state."""


class SamplingError(ReproError):
    """A sampling procedure received invalid parameters or cannot proceed."""


def check_positive_int(value: int, name: str) -> int:
    """Validate that *value* is a positive ``int`` and return it.

    ``bool`` is rejected even though it subclasses ``int``: passing ``True``
    as ``k`` is always a bug.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise ReproError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ReproError(f"{name} must be >= 1, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate that *value* lies in the closed interval [0, 1] and return it."""
    try:
        number = float(value)
    except (TypeError, ValueError) as exc:
        raise ReproError(f"{name} must be a number, got {value!r}") from exc
    if not 0.0 <= number <= 1.0:
        raise ReproError(f"{name} must be within [0, 1], got {number}")
    return number
