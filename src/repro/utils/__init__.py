"""Shared utilities: union-find, seeded RNG helpers, table rendering, validation.

These modules are substrate for the rest of the package and deliberately have
no dependency on the graph machinery.
"""

from repro.utils.unionfind import UnionFind
from repro.utils.validation import (
    AnonymizationError,
    GraphStructureError,
    PartitionError,
    ReproError,
    SamplingError,
    check_positive_int,
    check_probability,
)

__all__ = [
    "UnionFind",
    "ReproError",
    "GraphStructureError",
    "PartitionError",
    "AnonymizationError",
    "SamplingError",
    "check_positive_int",
    "check_probability",
]
