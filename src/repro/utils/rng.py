"""Deterministic random-number handling.

Every randomized procedure in the library (samplers, generators, workloads)
accepts either a seed or a ``random.Random`` instance. Centralising the
coercion here keeps experiment runs reproducible end to end: the experiment
harness passes integer seeds, tests pass explicit ``Random`` objects, and no
module ever touches the global ``random`` state.

Stream spawning
---------------
:func:`spawn` derives named child generators from a parent; the label is
mixed in through a stable SHA-256 digest, never the builtin ``hash`` (which
is salted by ``PYTHONHASHSEED`` and would differ between worker processes
of a parallel run, and between runs of the same script). The contract the
parallel runtime (:mod:`repro.runtime`) relies on:

* spawning consumes exactly **one** 64-bit draw from the parent, however the
  child is used afterwards — sibling streams never perturb each other;
* the child depends only on (parent state at spawn time, label) — the same
  seed and label yield a bit-identical stream in every process, on every
  machine, for any ``PYTHONHASHSEED``;
* distinct labels yield independent streams (distinct 64-bit seed points).
"""

from __future__ import annotations

import hashlib
import random

RandomLike = random.Random | int | None


def ensure_rng(rng: RandomLike) -> random.Random:
    """Coerce *rng* into a ``random.Random`` instance.

    - ``None``       -> a fresh, OS-seeded generator;
    - ``int``        -> a generator seeded with that value;
    - ``Random``     -> returned unchanged (shared state, caller's choice).
    """
    if rng is None:
        # The documented contract: rng=None asks for a fresh OS-seeded
        # generator. Every deterministic path passes a seed instead.
        # repro-lint: disable=DET001 -- rng=None contract: OS-seeded on purpose
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    if isinstance(rng, bool) or not isinstance(rng, int):
        raise TypeError(f"rng must be None, an int seed, or random.Random, got {type(rng).__name__}")
    return random.Random(rng)


def derive_seed(base: int, label: str) -> int:
    """A 64-bit seed derived from *base* and *label* via a stable digest.

    Pure arithmetic on the inputs — no process-dependent state — so the same
    (base, label) pair maps to the same seed in every interpreter.
    """
    digest = hashlib.sha256(f"{base}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def spawn(rng: random.Random, stream: str) -> random.Random:
    """Derive an independent, reproducible child generator from *rng*.

    The child is seeded from one 64-bit parent draw combined with the label
    through :func:`derive_seed`, so distinct subsystems (e.g. the sampler and
    the workload generator of one experiment) do not perturb each other's
    sequences when one of them changes how many numbers it draws.
    """
    return random.Random(derive_seed(rng.getrandbits(64), stream))
