"""Deterministic random-number handling.

Every randomized procedure in the library (samplers, generators, workloads)
accepts either a seed or a ``random.Random`` instance. Centralising the
coercion here keeps experiment runs reproducible end to end: the experiment
harness passes integer seeds, tests pass explicit ``Random`` objects, and no
module ever touches the global ``random`` state.
"""

from __future__ import annotations

import random

RandomLike = random.Random | int | None


def ensure_rng(rng: RandomLike) -> random.Random:
    """Coerce *rng* into a ``random.Random`` instance.

    - ``None``       -> a fresh, OS-seeded generator;
    - ``int``        -> a generator seeded with that value;
    - ``Random``     -> returned unchanged (shared state, caller's choice).
    """
    if rng is None:
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    if isinstance(rng, bool) or not isinstance(rng, int):
        raise TypeError(f"rng must be None, an int seed, or random.Random, got {type(rng).__name__}")
    return random.Random(rng)


def spawn(rng: random.Random, stream: str) -> random.Random:
    """Derive an independent, reproducible child generator from *rng*.

    The child is seeded from the parent's stream combined with a label, so
    distinct subsystems (e.g. the sampler and the workload generator of one
    experiment) do not perturb each other's sequences when one of them
    changes how many numbers it draws.
    """
    seed = rng.getrandbits(64) ^ (hash(stream) & 0xFFFFFFFFFFFFFFFF)
    return random.Random(seed)
