"""Plain-text table rendering for the experiment harness.

The paper presents results as R plots and one statistics table; our harness
reproduces the underlying data series and prints them as aligned text tables
(and machine-readable JSON elsewhere). This module knows nothing about the
experiments themselves.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def _cell(value: object, float_fmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_fmt: str = ".4f",
    title: str | None = None,
) -> str:
    """Render *rows* under *headers* as an aligned monospace table.

    Floats are formatted with *float_fmt*; all other values via ``str``.

    >>> print(render_table(["name", "x"], [["a", 1.5]], float_fmt=".1f"))
    name | x
    -----+----
    a    | 1.5
    """
    str_rows = [[_cell(value, float_fmt) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for i, text in enumerate(row):
            widths[i] = max(widths[i], len(text))

    def fmt_line(cells: Sequence[str]) -> str:
        return " | ".join(text.ljust(width) for text, width in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_line(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(fmt_line(row) for row in str_rows)
    return "\n".join(lines)


def render_series(name: str, xs: Sequence[object], ys: Sequence[object], float_fmt: str = ".4f") -> str:
    """Render one plotted curve as a two-column table titled *name*."""
    if len(xs) != len(ys):
        raise ValueError(f"series {name!r}: {len(xs)} x-values vs {len(ys)} y-values")
    return render_table(["x", name], list(zip(xs, ys)), float_fmt=float_fmt)
