"""Shared testing utilities: hypothesis strategies and structural asserts.

This module is the single source for the graph generators and equality
helpers used by three consumers:

* the pytest suite (``tests/conftest.py`` re-exports the strategies so
  existing test code keeps importing them from the fixture namespace),
* the :mod:`repro.audit` fuzzing corpus (the predicates below are its
  certificate vocabulary),
* downstream users who want to property-test code built on this library.

The hypothesis strategies need the optional ``hypothesis`` package (a dev
dependency); the predicates and assert helpers do not. Importing this module
without hypothesis installed works — only calling a strategy raises.
"""

from __future__ import annotations

from repro.graphs.generators import random_tree
from repro.graphs.graph import Graph
from repro.graphs.partition import Partition
from repro.utils.validation import ReproError

try:
    from hypothesis import strategies as _st
except ImportError:  # pragma: no cover - exercised only without dev deps
    _st = None


# ---------------------------------------------------------------------------
# structural predicates and assert helpers (no hypothesis required)
# ---------------------------------------------------------------------------

def graphs_equal(actual: Graph, expected: Graph) -> bool:
    """Exact equality of vertex and edge sets (not isomorphism)."""
    return actual.equals(expected)


def graphs_isomorphic(actual: Graph, expected: Graph) -> bool:
    """Label-independent equality via canonical certificates."""
    if actual.n != expected.n or actual.m != expected.m:
        return False
    from repro.isomorphism.canonical import certificate

    return certificate(actual) == certificate(expected)


def partitions_equal(actual: Partition, expected: Partition) -> bool:
    """Equality of partitions as sets of cells (order-insensitive)."""
    return actual == expected


def cell_size_multiset(partition: Partition) -> tuple[int, ...]:
    """The sorted multiset of cell sizes — a cheap label-invariant summary."""
    return tuple(sorted(partition.cell_sizes()))


def assert_graphs_equal(actual: Graph, expected: Graph, context: str = "") -> None:
    """Assert exact vertex/edge equality with a diff-style message."""
    if actual.equals(expected):
        return
    prefix = f"{context}: " if context else ""
    missing = [e for e in expected.sorted_edges() if not actual.has_edge(*e)]
    extra = [e for e in actual.sorted_edges() if not expected.has_edge(*e)]
    raise AssertionError(
        f"{prefix}graphs differ: expected n={expected.n} m={expected.m}, "
        f"got n={actual.n} m={actual.m}; missing edges {missing[:5]}, "
        f"unexpected edges {extra[:5]}"
    )


def assert_graphs_isomorphic(actual: Graph, expected: Graph, context: str = "") -> None:
    """Assert canonical-certificate equality (structure, not labels)."""
    if graphs_isomorphic(actual, expected):
        return
    prefix = f"{context}: " if context else ""
    raise AssertionError(
        f"{prefix}graphs are not isomorphic: "
        f"(n={actual.n}, m={actual.m}) vs (n={expected.n}, m={expected.m}), "
        f"degree sequences {actual.degree_sequence()} vs {expected.degree_sequence()}"
    )


def assert_partitions_equal(actual: Partition, expected: Partition, context: str = "") -> None:
    """Assert cell-set equality with the offending cells in the message."""
    if actual == expected:
        return
    prefix = f"{context}: " if context else ""
    actual_cells = {frozenset(c) for c in actual.cells}
    expected_cells = {frozenset(c) for c in expected.cells}
    raise AssertionError(
        f"{prefix}partitions differ: only-in-actual "
        f"{[sorted(c) for c in actual_cells - expected_cells][:3]}, only-in-expected "
        f"{[sorted(c) for c in expected_cells - actual_cells][:3]}"
    )


# ---------------------------------------------------------------------------
# hypothesis strategies (require the optional hypothesis package)
# ---------------------------------------------------------------------------

if _st is not None:

    @_st.composite
    def small_graphs(draw, min_n: int = 1, max_n: int = 8):
        """Arbitrary simple graphs on up to *max_n* integer vertices.

        Small enough for the brute-force automorphism oracle, rich enough to
        exercise every branch of the engine (disconnected graphs, isolated
        vertices, near-complete graphs).
        """
        n = draw(_st.integers(min_value=min_n, max_value=max_n))
        possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
        edges = draw(_st.lists(_st.sampled_from(possible), unique=True, max_size=len(possible))
                     if possible else _st.just([]))
        return Graph.from_edges(edges, vertices=range(n))

    @_st.composite
    def small_trees(draw, min_n: int = 1, max_n: int = 9):
        """Random recursive trees — the pendant-decomposition stress case."""
        n = draw(_st.integers(min_value=min_n, max_value=max_n))
        seed = draw(_st.integers(min_value=0, max_value=2**32 - 1))
        return random_tree(n, rng=seed)

    @_st.composite
    def graph_with_vertex(draw, min_n: int = 2, max_n: int = 8):
        """A (graph, vertex) pair with at least one edge-capable graph."""
        graph = draw(small_graphs(min_n=min_n, max_n=max_n))
        v = draw(_st.sampled_from(sorted(graph.vertices())))
        return graph, v

else:  # pragma: no cover - exercised only without dev deps

    def _missing_hypothesis(name: str):
        def strategy(*args, **kwargs):
            raise ReproError(
                f"repro.testing.{name} requires the optional 'hypothesis' package "
                "(install the [dev] extra)"
            )
        strategy.__name__ = name
        return strategy

    small_graphs = _missing_hypothesis("small_graphs")
    small_trees = _missing_hypothesis("small_trees")
    graph_with_vertex = _missing_hypothesis("graph_with_vertex")


__all__ = [
    "assert_graphs_equal",
    "assert_graphs_isomorphic",
    "assert_partitions_equal",
    "cell_size_multiset",
    "graph_with_vertex",
    "graphs_equal",
    "graphs_isomorphic",
    "partitions_equal",
    "small_graphs",
    "small_trees",
]
