#!/usr/bin/env python3
"""The Analyst API: original-network statistics with error bars.

A downstream researcher receives the published triple (G', V', n) for the
Hep-Th stand-in and estimates the statistics they'd normally compute on the
raw data — average degree, edge count, transitivity, connectivity — each
with an across-sample confidence band, plus a resilience probe.

Run: ``python examples/analyst_session.py`` (~half a minute)
"""

from repro import anonymize
from repro.analysis import Analyst
from repro.datasets import load_dataset
from repro.metrics import global_transitivity


def main() -> None:
    original = load_dataset("hepth")  # the secret the analyst never sees
    publication = anonymize(original, 5)
    print(f"received publication: {publication.graph.n} vertices, "
          f"{publication.graph.m} edges, {len(publication.partition)} cells\n")

    analyst = Analyst(*publication.published(), n_samples=15, rng=42)
    print(analyst.summary())

    # Ground truth comparison (only possible here because we ARE the publisher).
    print("\nground truth (the secret original):")
    print(f"{'average degree':<28} {original.average_degree():10.3f}")
    print(f"{'edges':<28} {float(original.m):10.3f}")
    print(f"{'transitivity':<28} {global_transitivity(original):10.3f}")
    lcc = original.largest_component_size() / original.n
    print(f"{'largest component fraction':<28} {lcc:10.3f}")

    probe = analyst.resilience_at(0.05)
    print(f"\nresilience probe: after removing the top 5% of hubs, the largest "
          f"component keeps {probe.mean:.1%} ± {probe.std:.1%} of vertices")

    degree_estimate = analyst.average_degree()
    truth = original.average_degree()
    bias = degree_estimate.mean - truth
    print(f"\nestimate vs truth for average degree: {degree_estimate.mean:.3f} vs "
          f"{truth:.3f} (bias {bias:+.3f}, {abs(bias) / truth:.1%})")
    print("the interval reflects sampling variance only; the small systematic "
          "bias is the anonymization distortion the paper's Figure 8 KS panels "
          "quantify — and what Section 5.2's hub exclusion shrinks.")


if __name__ == "__main__":
    main()
