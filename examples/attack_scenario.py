#!/usr/bin/env python3
"""The paper's Figure 1 story: re-identifying Bob, and how k-symmetry stops it.

An adversary knows two structural facts about Bob:

* P1 — "Bob has at least 3 neighbours"          (weak: 3 candidates)
* P2 — "Bob has 2 neighbours with degree 1"     (fatal: unique)

We run both attacks against the naively-anonymized network, show P2 wins,
then anonymize with k = 2 and show that *every* structural measure — even
the paper's strong combined measure — is stuck at >= 2 candidates.

Run: ``python examples/attack_scenario.py``
"""

from repro import anonymize, simulate_attack
from repro.attacks import MEASURES, candidate_set
from repro.datasets import figure1_graph, figure1_names


def main() -> None:
    published = figure1_graph()
    bob = figure1_names()["Bob"]
    print(f"naively-anonymized network: {published.n} vertices, {published.m} edges")
    print(f"(the publisher secretly knows Bob is vertex {bob})\n")

    # P1: "Bob has at least 3 neighbours" — expressed as a custom predicate.
    p1_candidates = {v for v in published.vertices() if published.degree(v) >= 3}
    print(f"P1 'at least 3 neighbours'  -> candidates {sorted(p1_candidates)} "
          f"(probability {1 / len(p1_candidates):.2f})")

    # P2: "Bob has 2 neighbours with degree 1".
    def degree_one_neighbors(graph, v):
        return sum(1 for u in graph.neighbors(v) if graph.degree(u) == 1)

    p2_candidates = candidate_set(published, degree_one_neighbors, 2)
    print(f"P2 '2 degree-1 neighbours'  -> candidates {p2_candidates}")
    assert p2_candidates == [bob]
    print("   ... Bob is uniquely re-identified. Naive anonymization failed.\n")

    # Publish with k-symmetry instead.
    k = 2
    publication = anonymize(published, k)
    protected = publication.graph
    print(f"k={k}-symmetric release: {protected.n} vertices "
          f"(+{publication.vertices_added}), {protected.m} edges "
          f"(+{publication.edges_added})\n")

    # Every registered structural measure now leaves >= k candidates for
    # every vertex — including Bob under the measure that doomed him.
    print(f"{'measure':<18} {'min candidates over all vertices':>34}")
    for name in sorted(MEASURES):
        worst = min(
            simulate_attack(protected, v, name).anonymity
            for v in protected.vertices()
        )
        print(f"{name:<18} {worst:>34}")
        assert worst >= k

    p2_after = candidate_set(protected, degree_one_neighbors,
                             degree_one_neighbors(protected, bob))
    print(f"\nP2 against the k-symmetric release -> candidates {sorted(p2_after)} "
          f"(Bob hides among {len(p2_after)})")
    assert len(p2_after) >= k


if __name__ == "__main__":
    main()
