#!/usr/bin/env python3
"""Section 5.2 in action: how excluding a few hubs slashes anonymization cost.

Runs on the Net-trace-like dataset — 4213 vertices with a single extreme hub
of degree ~1656 — and publishes it at k = 5 while excluding the top 0%, 1%
and 5% of vertices by degree from protection. Reports the insertion cost and
a quick utility check for each setting.

Run: ``python examples/hub_exclusion.py`` (about a minute)
"""

from repro import anonymize_f, sample_many
from repro.core import excluded_vertices_by_fraction, hub_exclusion_by_fraction
from repro.datasets import load_dataset
from repro.isomorphism import automorphism_partition
from repro.metrics import degree_values, ks_statistic


def main() -> None:
    original = load_dataset("net_trace")
    hub_degree = original.max_degree()
    print(f"Net-trace stand-in: {original.n} vertices, {original.m} edges, "
          f"max degree {hub_degree}")
    print("computing Orb(G) once (shared across settings)...")
    orbits = automorphism_partition(original).orbits

    k = 5
    baseline_edges = None
    for fraction in (0.0, 0.01, 0.05):
        requirement = hub_exclusion_by_fraction(k, original, fraction)
        publication = anonymize_f(original, requirement, partition=orbits)
        excluded = excluded_vertices_by_fraction(original, fraction)
        saved = ""
        if baseline_edges is None:
            baseline_edges = publication.edges_added
        elif baseline_edges:
            saved = f"  ({1 - publication.edges_added / baseline_edges:.1%} of edge cost saved)"
        print(f"\nexclude top {fraction:.0%} ({len(excluded)} vertices): "
              f"+{publication.vertices_added} vertices, "
              f"+{publication.edges_added} edges{saved}")

        published_graph, published_partition, original_n = publication.published()
        samples = sample_many(published_graph, published_partition, original_n,
                              n_samples=5, rng=3)
        orig_deg = degree_values(original)
        avg_ks = sum(ks_statistic(orig_deg, degree_values(s)) for s in samples) / len(samples)
        print(f"  degree-distribution KS over 5 samples: {avg_ks:.4f} "
              "(lower = better utility)")

    print("\nThe protected vertices still enjoy the full k-symmetry guarantee; "
          "only the named hubs (public infrastructure / well-known individuals) "
          "are left identifiable — and revealing them does not help an adversary "
          "narrow anyone else below k candidates.")


if __name__ == "__main__":
    main()
