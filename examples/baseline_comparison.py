#!/usr/bin/env python3
"""Why k-symmetry, executable: the competing models measured side by side.

Anonymizes the same network with three mechanisms —

* k-degree anonymity (Liu & Terzi 2008, edge insertion),
* random edge perturbation (Hay et al. 2007),
* k-symmetry (this paper),

then measures the *actual* anonymity level each provides under increasingly
informed adversaries: degree knowledge, 1-neighbourhood knowledge, the
paper's combined measure, and the structural-knowledge floor (orbit size).

Run: ``python examples/baseline_comparison.py``
"""

from repro import anonymize
from repro.baselines import anonymity_report, k_degree_anonymize, random_perturbation
from repro.datasets import load_dataset


def show(label: str, graph, cost: str) -> None:
    report = anonymity_report(graph)
    print(f"{label:<22} {cost:<22} {report.degree_level:>7} "
          f"{report.neighborhood_level:>13} {report.combined_level:>9} "
          f"{report.symmetry_level:>9}")


def main() -> None:
    k = 5
    original = load_dataset("enron")
    print(f"network: Enron stand-in ({original.n} vertices, {original.m} edges), k={k}")
    print("\nanonymity level actually achieved (minimum candidate-set size)")
    print("the adversary knows the target's ...")
    print(f"{'mechanism':<22} {'cost':<22} {'degree':>7} {'neighbourhood':>13} "
          f"{'combined':>9} {'ANY (floor)':>9}")

    show("none (naive release)", original, "-")

    kd = k_degree_anonymize(original, k)
    show("k-degree anonymity", kd.graph, f"+{kd.edges_added} edges")

    noise = original.m // 10
    rp = random_perturbation(original, delete=noise, add=noise, rng=7)
    show("random perturbation", rp.graph, f"~{2 * noise} edges changed")

    ks = anonymize(original, k)
    show("k-symmetry", ks.graph,
         f"+{ks.vertices_added}v +{ks.edges_added}e")

    print("\nReading the table: each mechanism defends the knowledge it was")
    print("designed for, but only k-symmetry raises the FLOOR — the guarantee")
    print(f"that no structural knowledge whatsoever beats 1/{k}.")


if __name__ == "__main__":
    main()
