#!/usr/bin/env python3
"""Quickstart: publish a k-symmetric social network and analyse it.

Walks the full pipeline on a small network:

1. naive anonymization (replace names with random integers),
2. k-symmetry anonymization (Algorithm 1),
3. verification that the guarantee holds,
4. backbone-based sampling and a utility check.

Run: ``python examples/quickstart.py``
"""

from repro import (
    Graph,
    anonymize,
    automorphism_partition,
    is_k_symmetric,
    naive_anonymization,
    sample_many,
    verify_anonymization,
)
from repro.metrics import degree_values, ks_statistic


def main() -> None:
    # A little collaboration network with named individuals.
    friendships = [
        ("Alice", "Bob"), ("Carol", "Bob"),
        ("Bob", "Dave"), ("Bob", "Ed"),
        ("Dave", "Fred"), ("Ed", "Harry"),
        ("Dave", "Greg"), ("Ed", "Greg"),
        ("Fred", "Harry"),
    ]
    social = Graph.from_edges(friendships)
    print(f"original network: {social.n} people, {social.m} friendships")

    # Step 1 — naive anonymization: strip identities.
    published_naive, secret_mapping = naive_anonymization(social, rng=42)
    print(f"naively anonymized as integers 0..{social.n - 1}; Bob is secretly "
          f"vertex {secret_mapping['Bob']}")

    # The orbit structure bounds every structural attack (Section 2.1).
    orbits = automorphism_partition(published_naive).orbits
    print("orbits of the naive release:",
          [list(cell) for cell in orbits.cells])
    print(f"smallest orbit has {orbits.min_cell_size()} member(s) -> an adversary "
          "with the right structural knowledge re-identifies those uniquely")

    # Step 2 — k-symmetry anonymization.
    k = 3
    publication = anonymize(published_naive, k)
    print(f"\nk={k} anonymization: "
          f"+{publication.vertices_added} vertices, +{publication.edges_added} edges")

    # Step 3 — verify, both structurally and by recomputing Orb(G') exactly.
    report = verify_anonymization(publication, exact=True)
    print(f"verification: {'OK' if report.ok else report.failures}")
    print(f"is_k_symmetric(G', {k}) = {is_k_symmetric(publication.graph, k)}")

    # Step 4 — the analyst's side: draw samples, compare a statistic.
    published_graph, published_partition, original_n = publication.published()
    samples = sample_many(published_graph, published_partition, original_n,
                          n_samples=10, rng=7)
    original_degrees = degree_values(published_naive)
    avg_ks = sum(
        ks_statistic(original_degrees, degree_values(s)) for s in samples
    ) / len(samples)
    print(f"\nanalyst drew {len(samples)} sample graphs of size ~{original_n}; "
          f"average degree-distribution KS distance to the secret original: {avg_ks:.3f}")


if __name__ == "__main__":
    main()
