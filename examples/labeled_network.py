#!/usr/bin/env python3
"""Beyond the paper: k-symmetry for labelled networks, and link privacy.

Publishes a small *attributed* collaboration network (every person carries a
role label that survives publication) and shows:

1. colored k-symmetry — every equivalence class is monochromatic, so an
   adversary combining the attribute with any structural knowledge still
   faces >= k candidates;
2. link-disclosure analysis — edge orbits before and after anonymization,
   quantifying how well specific *relationships* hide.

Run: ``python examples/labeled_network.py``
"""

from repro import naive_anonymization
from repro.attacks.links import link_disclosure_report
from repro.core.colored import anonymize_colored
from repro.graphs import Graph


def main() -> None:
    collaboration = Graph.from_edges([
        ("prof_a", "phd_1"), ("prof_a", "phd_2"), ("prof_a", "phd_5"),
        ("prof_a", "prof_b"),
        ("prof_b", "phd_3"), ("prof_b", "phd_4"),
        ("phd_1", "msc_1"), ("phd_3", "msc_2"), ("phd_5", "msc_3"),
    ])
    roles = {name: name.split("_")[0] for name in collaboration.vertices()}

    published_naive, secret = naive_anonymization(collaboration, rng=17)
    published_roles = {secret[name]: role for name, role in roles.items()}
    print(f"network: {collaboration.n} researchers, {collaboration.m} collaborations; "
          f"roles: {sorted(set(roles.values()))}")

    k = 2
    result, full_colors = anonymize_colored(published_naive, k, published_roles)
    print(f"\ncolored k={k} publication: {result.graph.n} vertices "
          f"(+{result.vertices_added}), {result.graph.m} edges (+{result.edges_added})")

    for cell in result.partition.cells:
        cell_roles = {full_colors[v] for v in cell}
        assert len(cell_roles) == 1 and len(cell) >= k
    print("every published equivalence class is monochromatic and has "
          f">= {k} members — role + ANY structural knowledge leaves >= {k} candidates")

    # Link privacy before/after.
    before = link_disclosure_report(published_naive)
    after = link_disclosure_report(result.graph)
    print(f"\nlink privacy (candidate edges per relationship):")
    print(f"  naive release:     worst edge hides among {before.min_edge_orbit} "
          f"(confirmation probability {before.max_confirmation_probability:.2f})")
    print(f"  k-symmetric:       worst edge hides among {after.min_edge_orbit} "
          f"(confirmation probability {after.max_confirmation_probability:.2f})")


if __name__ == "__main__":
    main()
