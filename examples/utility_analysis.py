#!/usr/bin/env python3
"""The analyst's workflow: recover statistics from a k-symmetric publication.

Uses the Enron-like dataset: the publisher anonymizes with k = 5 and
releases (G', V', |V(G)|); the analyst draws sample graphs with both the
exact (Algorithm 3) and approximate (Algorithm 4) samplers and compares all
four Figure 8 properties — degree distribution, path lengths, transitivity
and resilience — against the secret original.

Run: ``python examples/utility_analysis.py`` (about half a minute)
"""

from repro import anonymize, sample_many
from repro.datasets import load_dataset
from repro.metrics import compare_utility


def main() -> None:
    original = load_dataset("enron")
    print(f"secret original: {original.n} vertices, {original.m} edges")

    k = 5
    publication = anonymize(original, k)
    published_graph, published_partition, original_n = publication.published()
    print(f"published (k={k}): {published_graph.n} vertices, {published_graph.m} edges, "
          f"{len(published_partition)} cells\n")

    n_samples = 20
    for strategy in ("approximate", "exact"):
        samples = sample_many(
            published_graph, published_partition, original_n,
            n_samples=n_samples, strategy=strategy, rng=11,
        )
        comparison = compare_utility(original, samples, rng=13)
        print(f"{strategy} sampler, {n_samples} samples "
              f"(all statistics: lower = closer to the original):")
        print(f"  degree-distribution KS:     {comparison.degree_ks:.4f}")
        print(f"  path-length KS:             {comparison.path_ks:.4f}")
        print(f"  transitivity KS:            {comparison.clustering_ks:.4f}")
        print(f"  resilience max gap:         {comparison.resilience_gap:.4f}")
        sizes = sorted(s.n for s in samples)
        print(f"  sample sizes: {sizes[0]}..{sizes[-1]} (original {original_n})\n")

    print("The paper's observation: the two samplers deliver near-identical "
          "utility, so the linear-time approximate sampler is the practical choice.")


if __name__ == "__main__":
    main()
